open Dmx_value
open Dmx_catalog
module Txn = Dmx_txn.Txn
module Txn_mgr = Dmx_txn.Txn_mgr
module Lock_table = Dmx_lock.Lock_table

let sm_calls = ref 0 [@@dmx.global "UNSAFE"]
let at_calls = ref 0 [@@dmx.global "UNSAFE"]
let dispatch_stats () = (!sm_calls, !at_calls)

(* The dispatch counters are always on (they cost one [incr] and predate the
   metrics registry); a probe folds them into the common exposition. *)
let () =
  Dmx_obs.Metrics.register_probe "dispatch" (fun () ->
      [ ("dispatch.sm_calls", !sm_calls); ("dispatch.at_calls", !at_calls) ])

(* Attachment vetoes, so the query store can charge them per statement. *)
let m_vetoes = Dmx_obs.Metrics.counter "dispatch.vetoes"

(* Internal savepoints get nesting-safe names from a per-transaction
   counter, so cascading modifications (an attached procedure modifying
   another relation) roll back exactly their own partial effects. *)
let op_counter : int ref Dmx_txn.Tmap.key = Dmx_txn.Tmap.new_key "relation.op"

let fresh_savepoint ctx =
  let txn = ctx.Ctx.txn in
  let counter =
    match Txn.attr txn op_counter with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Txn.set_attr txn op_counter r;
      r
  in
  incr counter;
  let name = Fmt.str "__op:%d" !counter in
  Txn_mgr.savepoint ctx.Ctx.txn_mgr txn name;
  name

let release_savepoint ctx name =
  let txn = ctx.Ctx.txn in
  txn.Txn.savepoints <-
    List.filter (fun sp -> sp.Txn.sp_name <> name) txn.Txn.savepoints

let rollback_op ctx name =
  Txn_mgr.rollback_to ctx.Ctx.txn_mgr ctx.Ctx.txn name;
  release_savepoint ctx name

(* Run [f] bracketed by an internal savepoint: partial rollback on error or
   exception, cancellation on success. *)
let with_op_savepoint ctx f =
  let name = fresh_savepoint ctx in
  match f () with
  | Ok _ as ok ->
    release_savepoint ctx name;
    ok
  | Error _ as e ->
    rollback_op ctx name;
    e
  | exception Error.Error err ->
    rollback_op ctx name;
    Error err

let lock_relation ctx desc mode =
  Ctx.lock ctx ~mode (Lock_table.Relation desc.Descriptor.rel_id)

let lock_record ctx desc key mode =
  Ctx.lock ctx ~mode
    (Lock_table.Record
       (desc.Descriptor.rel_id, Bytes.to_string (Record_key.encode key)))

let ( let* ) = Result.bind

(* ---- dispatch tracing and profiling ------------------------------------ *)
(* Attribute closures run only when tracing is on; the disabled path costs
   one branch per wrapper. [pkey] additionally charges the bracketed work to
   the latency-attribution table under that (vector, slot) key when
   profiling is on — vector-boundary sites (smethod/attachment slots) pass
   it, purely observational spans do not. *)

let result_outcome = function
  | Ok _ -> ("ok", None)
  | Error (Error.Veto { reason; _ }) -> ("veto", Some reason)
  | Error e -> ("error", Some (Error.to_string e))

let profile_outcome = function
  | Ok _ -> `Ok
  | Error (Error.Veto _) -> `Veto
  | Error _ -> `Error

let with_result_span ?pkey name ~txid attrs f =
  if
    not
      (Dmx_obs.Trace.enabled ()
      || (pkey <> None && Dmx_obs.Profile.enabled ()))
  then f ()
  else begin
    let traced = Dmx_obs.Trace.enabled () in
    let sp =
      Dmx_obs.Trace.enter name ~txid ~attrs:(if traced then attrs () else [])
    in
    let fr =
      match pkey with
      | Some k -> Some (Dmx_obs.Profile.begin_frame ~txid k)
      | None -> None
    in
    let close_frame outcome =
      match fr with
      | Some fr -> Dmx_obs.Profile.end_frame ~outcome fr
      | None -> ()
    in
    match f () with
    | r ->
      close_frame (profile_outcome r);
      let outcome, reason = result_outcome r in
      let attrs =
        match reason with
        | None -> []
        | Some m -> [ ("reason", Dmx_obs.Obs_json.Str m) ]
      in
      Dmx_obs.Trace.exit_span ~outcome ~attrs sp;
      r
    | exception e ->
      close_frame `Exn;
      Dmx_obs.Trace.exit_span ~outcome:"exn" sp;
      raise e
  end

let rel_span ctx desc op f =
  with_result_span ("relation." ^ op) ~txid:ctx.Ctx.txn.Txn.id
    (fun () ->
      [ ("rel", Dmx_obs.Obs_json.Str desc.Descriptor.rel_name);
        ("rel_id", Dmx_obs.Obs_json.Int desc.Descriptor.rel_id) ])
    f

let sm_span ctx desc op f =
  with_result_span ("smethod." ^ op) ~txid:ctx.Ctx.txn.Txn.id
    ~pkey:(Dmx_obs.Profile.Smethod desc.Descriptor.smethod_id)
    (fun () ->
      [ ("smethod_id", Dmx_obs.Obs_json.Int desc.Descriptor.smethod_id) ])
    f

let attachment_label n =
  match Registry.attachment_name n with
  | name -> name
  | exception Invalid_argument _ -> Fmt.str "type:%d" n

(* Invoke each attachment type with instances on the relation, ascending type
   id, through the attached-procedure vectors. [info] supplies the op-specific
   span attributes (key, old/new records), built lazily. *)
let run_attached ctx desc ~op ~info f =
  let rec loop = function
    | [] -> Ok ()
    | n :: rest -> begin
      match Descriptor.attachment_desc desc n with
      | None -> loop rest
      | Some slot -> begin
        incr at_calls;
        let r =
          with_result_span ("attach." ^ op) ~txid:ctx.Ctx.txn.Txn.id
            ~pkey:(Dmx_obs.Profile.Attachment n)
            (fun () ->
              ("attachment", Dmx_obs.Obs_json.Str (attachment_label n))
              :: ("type_id", Dmx_obs.Obs_json.Int n)
              :: info ())
            (fun () -> f n slot)
        in
        match r with
        | Ok () -> loop rest
        | Error (Error.Veto _) as e ->
          Dmx_obs.Metrics.incr m_vetoes;
          e
        | Error _ as e -> e
      end
    end
  in
  loop (Descriptor.attachment_types_present desc)

let validate ctx desc record =
  ignore ctx;
  match Schema.validate_record desc.Descriptor.schema record with
  | Ok () -> Ok ()
  | Error msg -> Error (Error.Schema_error msg)

let insert ctx desc record =
  Invariant.check_frozen_for_dispatch ~op:"insert";
  rel_span ctx desc "insert" (fun () ->
      let* () = validate ctx desc record in
      let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IX in
      with_op_savepoint ctx (fun () ->
          incr sm_calls;
          let* key =
            sm_span ctx desc "insert" (fun () ->
                Registry.Vec.sm_insert.(desc.Descriptor.smethod_id) ctx desc
                  record)
          in
          let* () = lock_record ctx desc key Dmx_lock.Lock_mode.X in
          let* () =
            run_attached ctx desc ~op:"insert"
              ~info:(fun () ->
                [ ("key", Dmx_obs.Obs_json.Str (Record_key.to_string key));
                  ( "new",
                    Dmx_obs.Obs_json.Str (Fmt.str "%a" Record.pp record) ) ])
              (fun n slot ->
                Registry.Vec.at_on_insert.(n) ctx desc ~slot key record)
          in
          Ok key))

(* Bulk insert: validation, the relation lock, the savepoint bracket and the
   span/profile setup are paid once per batch; the storage method and each
   attachment type present are dispatched once per batch through the optional
   batch vector entries (whose defaults loop the per-record slots). Atomic:
   either every record of the batch is inserted or — on the first storage
   method error or attachment veto — the whole batch rolls back. *)
let insert_many ctx desc records =
  Invariant.check_frozen_for_dispatch ~op:"insert_many";
  if Array.length records = 0 then Ok [||]
  else
    rel_span ctx desc "insert_many" (fun () ->
        let* () =
          Array.fold_left
            (fun acc r ->
              let* () = acc in
              validate ctx desc r)
            (Ok ()) records
        in
        let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IX in
        with_op_savepoint ctx (fun () ->
            incr sm_calls;
            let* keys =
              sm_span ctx desc "insert_many" (fun () ->
                  Registry.Vec.sm_insert_batch.(desc.Descriptor.smethod_id)
                    ctx desc records)
            in
            if Array.length keys <> Array.length records then
              Error
                (Error.Internal
                   "insert_many: storage method returned a key count \
                    different from the batch size")
            else
              let* () =
                Array.fold_left
                  (fun acc key ->
                    let* () = acc in
                    lock_record ctx desc key Dmx_lock.Lock_mode.X)
                  (Ok ()) keys
              in
              let entries = Array.map2 (fun k r -> (k, r)) keys records in
              let* () =
                run_attached ctx desc ~op:"insert_many"
                  ~info:(fun () ->
                    [ ("batch", Dmx_obs.Obs_json.Int (Array.length records)) ])
                  (fun n slot ->
                    Registry.Vec.at_on_insert_batch.(n) ctx desc ~slot entries)
              in
              Ok keys))

let update ctx desc key new_record =
  Invariant.check_frozen_for_dispatch ~op:"update";
  rel_span ctx desc "update" (fun () ->
      let* () = validate ctx desc new_record in
      let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IX in
      let* () = lock_record ctx desc key Dmx_lock.Lock_mode.X in
      let (module M : Intf.STORAGE_METHOD) =
        Registry.storage_method desc.Descriptor.smethod_id
      in
      match M.fetch ctx desc key () with
      | None -> Error (Error.Key_not_found (Record_key.to_string key))
      | Some old_record ->
        with_op_savepoint ctx (fun () ->
            incr sm_calls;
            let* new_key =
              sm_span ctx desc "update" (fun () ->
                  Registry.Vec.sm_update.(desc.Descriptor.smethod_id) ctx desc
                    key new_record)
            in
            let* () = lock_record ctx desc new_key Dmx_lock.Lock_mode.X in
            let* () =
              run_attached ctx desc ~op:"update"
                ~info:(fun () ->
                  [ ( "old_key",
                      Dmx_obs.Obs_json.Str (Record_key.to_string key) );
                    ( "new_key",
                      Dmx_obs.Obs_json.Str (Record_key.to_string new_key) );
                    ( "old",
                      Dmx_obs.Obs_json.Str (Fmt.str "%a" Record.pp old_record)
                    );
                    ( "new",
                      Dmx_obs.Obs_json.Str (Fmt.str "%a" Record.pp new_record)
                    ) ])
                (fun n slot ->
                  Registry.Vec.at_on_update.(n) ctx desc ~slot ~old_key:key
                    ~new_key ~old_record ~new_record)
            in
            Ok new_key))

let delete ctx desc key =
  Invariant.check_frozen_for_dispatch ~op:"delete";
  rel_span ctx desc "delete" (fun () ->
      let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IX in
      let* () = lock_record ctx desc key Dmx_lock.Lock_mode.X in
      with_op_savepoint ctx (fun () ->
          incr sm_calls;
          let* old_record =
            sm_span ctx desc "delete" (fun () ->
                Registry.Vec.sm_delete.(desc.Descriptor.smethod_id) ctx desc
                  key)
          in
          let* () =
            run_attached ctx desc ~op:"delete"
              ~info:(fun () ->
                [ ("key", Dmx_obs.Obs_json.Str (Record_key.to_string key));
                  ( "old",
                    Dmx_obs.Obs_json.Str (Fmt.str "%a" Record.pp old_record)
                  ) ])
              (fun n slot ->
                Registry.Vec.at_on_delete.(n) ctx desc ~slot key old_record)
          in
          Ok old_record))

(* [fetch] is the hottest generic-interface call (the E1 bench drives it);
   the uninstrumented path below is the seed code verbatim so the combined
   trace/profile gate costs the disabled build exactly one load and branch,
   no closures. *)
let fetch ctx desc key ?fields () =
  if not (Dmx_obs.Profile.instrumented ()) then
    let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IS in
    let (module M : Intf.STORAGE_METHOD) =
      Registry.storage_method desc.Descriptor.smethod_id
    in
    Ok (M.fetch ctx desc key ?fields ())
  else
    rel_span ctx desc "fetch" (fun () ->
      let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IS in
      let (module M : Intf.STORAGE_METHOD) =
        Registry.storage_method desc.Descriptor.smethod_id
      in
      begin
        let traced = Dmx_obs.Trace.enabled () in
        let sp =
          Dmx_obs.Trace.enter "smethod.fetch" ~txid:ctx.Ctx.txn.Txn.id
            ~attrs:
              (if traced then
                 [ ("smethod_id",
                    Dmx_obs.Obs_json.Int desc.Descriptor.smethod_id) ]
               else [])
        in
        let fr =
          Dmx_obs.Profile.begin_frame ~txid:ctx.Ctx.txn.Txn.id
            (Dmx_obs.Profile.Smethod desc.Descriptor.smethod_id)
        in
        match M.fetch ctx desc key ?fields () with
        | r ->
          Dmx_obs.Profile.end_frame fr;
          Dmx_obs.Trace.exit_span sp
            ~attrs:[ ("found", Dmx_obs.Obs_json.Bool (Option.is_some r)) ];
          Ok r
        | exception e ->
          Dmx_obs.Profile.end_frame fr ~outcome:`Exn;
          Dmx_obs.Trace.exit_span ~outcome:"exn" sp;
          raise e
      end)

(* Register a scan with the transaction so termination closes it and
   savepoints capture/restore its position. *)
let register_record_scan ctx (scan : Intf.record_scan) =
  let id =
    Ctx.register_scan ctx
      { Txn.scan_close = scan.rs_close; scan_capture = scan.rs_capture }
  in
  {
    scan with
    rs_close =
      (fun () ->
        Ctx.unregister_scan ctx id;
        scan.rs_close ());
  }

let register_run_scan ctx (scan : Intf.run_scan) =
  let id =
    Ctx.register_scan ctx
      { Txn.scan_close = scan.rn_close; scan_capture = scan.rn_capture }
  in
  {
    scan with
    rn_close =
      (fun () ->
        Ctx.unregister_scan ctx id;
        scan.rn_close ());
  }

let register_key_scan ctx (scan : Intf.key_scan) =
  let id =
    Ctx.register_scan ctx
      { Txn.scan_close = scan.ks_close; scan_capture = scan.ks_capture }
  in
  {
    scan with
    ks_close =
      (fun () ->
        Ctx.unregister_scan ctx id;
        scan.ks_close ());
  }

let scan ctx desc ?lo ?hi ?filter () =
  rel_span ctx desc "scan" (fun () ->
      let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IS in
      let (module M : Intf.STORAGE_METHOD) =
        Registry.storage_method desc.Descriptor.smethod_id
      in
      Ok (register_record_scan ctx (M.scan ctx desc ?lo ?hi ?filter ())))

(* Vectorized scan through the optional batch vector entry; the default
   chunks the method's record-at-a-time scan, so every storage method is
   batch-scannable. *)
let scan_batch ctx desc ?(lo = Intf.Unbounded) ?(hi = Intf.Unbounded) ?filter
    () =
  rel_span ctx desc "scan_batch" (fun () ->
      let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IS in
      Ok
        (register_run_scan ctx
           (Registry.Vec.sm_scan_batch.(desc.Descriptor.smethod_id) ctx desc
              ~lo ~hi ~filter)))

let lookup ctx desc ~attachment_id ~instance ~key =
  rel_span ctx desc "lookup" @@ fun () ->
  let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IS in
  match Descriptor.attachment_desc desc attachment_id with
  | None ->
    Error
      (Error.No_such_attachment
         (Fmt.str "relation %S has no attachment of type %d"
            desc.Descriptor.rel_name attachment_id))
  | Some slot ->
    let (module A : Intf.ATTACHMENT) = Registry.attachment attachment_id in
    Ok (A.lookup ctx desc ~slot ~instance ~key)

let attachment_scan ctx desc ~attachment_id ~instance ?lo ?hi () =
  let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IS in
  match Descriptor.attachment_desc desc attachment_id with
  | None ->
    Error
      (Error.No_such_attachment
         (Fmt.str "relation %S has no attachment of type %d"
            desc.Descriptor.rel_name attachment_id))
  | Some slot ->
    let (module A : Intf.ATTACHMENT) = Registry.attachment attachment_id in
    begin
      match A.scan ctx desc ~slot ~instance ?lo ?hi () with
      | None ->
        Error
          (Error.No_such_attachment
             (Fmt.str "attachment type %d offers no key-sequential access"
                attachment_id))
      | Some s -> Ok (register_key_scan ctx s)
    end

let record_count ctx desc =
  let* () = lock_relation ctx desc Dmx_lock.Lock_mode.IS in
  let (module M : Intf.STORAGE_METHOD) =
    Registry.storage_method desc.Descriptor.smethod_id
  in
  Ok (M.record_count ctx desc)
