(** Helpers extensions use to build scans.

    [filtered] wraps a raw producer with the common predicate-evaluation
    service so that non-qualifying records are skipped inside the extension,
    while the field values are still in the buffer pool (paper p. 223).
    When the caller supplies the relation [schema], the filter is compiled
    ({!Dmx_expr.Eval.compile}) once per scan open instead of interpreted per
    record. [filtered_batch] and [runs_of_scan] are the run-at-a-time
    counterparts used by the vectorized read path. *)

open Dmx_value

val run_length : unit -> int
(** Records per run for vectorized scans: [DMX_SCAN_BATCH] when set to a
    positive integer, else 256. *)

val set_run_length_for_testing : int option -> unit
(** Override (or, with [None], un-override) {!run_length} — tests only. *)

val filtered :
  ?filter:Dmx_expr.Expr.t ->
  ?schema:Schema.t ->
  next:(unit -> (Record_key.t * Record.t) option) ->
  close:(unit -> unit) ->
  capture:(unit -> unit -> unit) ->
  unit ->
  Intf.record_scan

val filtered_batch :
  ?filter:Dmx_expr.Expr.t ->
  ?schema:Schema.t ->
  next_run:(unit -> Intf.record_run option) ->
  close:(unit -> unit) ->
  capture:(unit -> unit -> unit) ->
  unit ->
  Intf.run_scan
(** Wrap a raw run producer with the predicate service. Runs that filter to
    empty are skipped — [rn_next] never yields an empty run. The producer
    must yield a fresh array per run: filtering compacts qualifying records
    in place rather than rebuilding the array. *)

val runs_of_scan :
  ?filter:Dmx_expr.Expr.t -> ?schema:Schema.t -> Intf.record_scan ->
  Intf.run_scan
(** Chunk a record-at-a-time scan into runs of {!run_length} — the default
    behaviour of the [sm_scan_batch] vector slot for storage methods without
    a native batch producer. The underlying scan position after a run is on
    that run's last record, so capture/close delegate directly. *)

val key_scan_of :
  next:(unit -> Record_key.t option) ->
  close:(unit -> unit) ->
  capture:(unit -> unit -> unit) ->
  unit ->
  Intf.key_scan

val record_scan_to_list : Intf.record_scan -> (Record_key.t * Record.t) list
(** Drain and close — convenience for tests and internal bulk reads. *)

val run_scan_to_list : Intf.run_scan -> (Record_key.t * Record.t) list
(** Drain and close a run scan, flattening its runs. *)

val key_scan_to_list : Intf.key_scan -> Record_key.t list
