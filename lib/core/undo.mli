(** The log-driven undo dispatcher.

    "The common recovery log is used to drive the storage method and
    attachment implementations to undo the partial effects of the aborted
    relation modification. The same log-based driver also drives storage
    method and attachment implementations during transaction abort and during
    system restart recovery" (paper p. 223).

    Installed into {!Dmx_txn.Txn_mgr} by {!Services.setup}; routes each [Ext]
    record to the undo entry point of the owning extension through the
    registry, or to the catalog facility for catalog records. *)

val dispatch :
  txn_mgr:Dmx_txn.Txn_mgr.t ->
  bp:Dmx_page.Buffer_pool.t ->
  catalog:Dmx_catalog.Catalog.t ->
  Dmx_txn.Txn.t ->
  Dmx_wal.Log_record.t ->
  unit

val set_chaos_skip : (Dmx_wal.Log_record.t -> bool) option -> unit
(** Mutation point for the chaos harness: records matching the predicate are
    silently *not* undone — a planted recovery bug that the torture oracle
    must catch (see DESIGN.md §10). [None] (the default) restores correct
    dispatch. Never used outside deliberate mutation runs. *)
