exception Invariant_violation of string

let override : bool option ref = ref None [@@dmx.global "config-immutable-after-setup"]

let from_env =
  lazy
    (match Sys.getenv_opt "DMX_SANITIZE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false) [@@dmx.global "config-immutable-after-setup"]

let enabled () =
  match !override with Some b -> b | None -> Lazy.force from_env

let set_enabled_for_testing b = override := b

let violation fmt =
  Fmt.kstr (fun s -> raise (Invariant_violation ("DMX_SANITIZE: " ^ s))) fmt

let check_pin_balance ~at bp =
  if enabled () then
    match Dmx_page.Buffer_pool.pinned_pages bp with
    | [] -> ()
    | leaks ->
      violation
        "buffer-pool pin leak detected at %s: %a — every pin must be released \
         by the operation that took it"
        at
        Fmt.(list ~sep:comma (fun ppf (page, pins) -> pf ppf "page %d (%d pin%s)" page pins (if pins = 1 then "" else "s")))
        leaks

let check_scan_balance ~at (txn : Dmx_txn.Txn.t) =
  if enabled () then
    match txn.Dmx_txn.Txn.scans with
    | [] -> ()
    | leaks ->
      violation
        "open-scan leak detected at %s: %d scan%s still registered on txn %d \
         — every scan opened during a transaction must be closed by the \
         operation that opened it before commit"
        at (List.length leaks)
        (if List.length leaks = 1 then "" else "s")
        txn.Dmx_txn.Txn.id

let lsn_observer ~source () =
  let last = ref Int64.min_int in
  fun lsn ->
    if enabled () && lsn <= !last then
      violation
        "WAL LSN monotonicity broken in %s: appended LSN %Ld after %Ld — log \
         records must be appended in strictly increasing order"
        source lsn !last;
    last := max !last lsn

let check_span_balance ~at =
  if enabled () && Dmx_obs.Trace.enabled () then
    match Dmx_obs.Trace.depth () with
    | 0 -> ()
    | n ->
      violation
        "trace-span imbalance detected at %s: %d span%s still open — every \
         span entered during an operation must be exited by transaction end"
        at n
        (if n = 1 then "" else "s")

let check_undo_above_base ~txid ~lsn ~base =
  if enabled () && lsn <= base && base > 0L then
    violation
      "undo for tx%d references LSN %Ld at or below the truncation point %Ld \
       — checkpoint truncation must never drop an active transaction's undo \
       chain"
      txid lsn base

let check_frozen_for_dispatch ~op =
  if enabled () && not (Registry.is_frozen ()) then
    violation
      "relation %s dispatched before Registry.freeze — extensions must be \
       registered and the registry frozen (Services.setup) before any \
       procedure-vector dispatch"
      op

(* ---- lockdep: runtime lock-order checking (DESIGN.md §12) ----

   The dynamic complement of the static R8 pass: every observed grant is
   checked for hierarchy coverage (a record lock needs the relation intent
   lock first), and relation-level acquisition order pairs accumulate in a
   process-global order graph. The first grant that completes a cycle whose
   modes actually conflict in both directions raises — an interleaving of
   the two recorded schedules could deadlock.

   Record-level locks are deliberately excluded from the order graph: which
   record keys collide is data-dependent, which is exactly what the waits-for
   deadlock detector resolves at runtime; flagging key-level orderings here
   would condemn legitimate workloads (e.g. the chaos mix of parent-then-
   child and cascade child-then-parent record writes). *)

module Lockdep = struct
  module Lock_table = Dmx_lock.Lock_table
  module Lock_mode = Dmx_lock.Lock_mode

  (* per-txn held locks, strongest mode per resource *)
  let held : (int, (Lock_table.resource * Lock_mode.t) list) Hashtbl.t =
    Hashtbl.create 32 [@@dmx.global "UNSAFE"]

  (* order edges: (relA, relB) -> list of (modeA, modeB): some transaction
     held relA in modeA while being granted relB in modeB *)
  let edges : (int * int, (Lock_mode.t * Lock_mode.t) list) Hashtbl.t =
    Hashtbl.create 64 [@@dmx.global "UNSAFE"]

  (* relations created by a still-open transaction: invisible to every
     concurrent transaction, so their lock order cannot invert with anyone *)
  let nascent : (int * int, unit) Hashtbl.t =
    Hashtbl.create 8 [@@dmx.global "UNSAFE"]

  let reset () =
    Hashtbl.reset held;
    Hashtbl.reset edges;
    Hashtbl.reset nascent

  let mark_nascent ~txid ~rel_id = Hashtbl.replace nascent (txid, rel_id) ()
  let is_nascent ~txid rel = Hashtbl.mem nascent (txid, rel)

  let release ~txid =
    Hashtbl.remove held txid;
    Hashtbl.iter
      (fun ((tx, _) as k) () -> if tx = txid then Hashtbl.remove nascent k)
      (Hashtbl.copy nascent)

  let check_hierarchy ~txid resource locks =
    match resource with
    | Lock_table.Relation _ -> ()
    | Lock_table.Record (rel, _) ->
      if
        not
          (List.exists
             (fun (r, _) -> r = Lock_table.Relation rel)
             locks)
      then
        violation
          "lockdep: txn %d granted a record lock on relation %d without \
           holding the relation lock — record access must be covered by a \
           relation-level intent lock (db -> relation -> record hierarchy)"
          txid rel

  (* T holds (a, held_a) and is granted (b, want_b). A previously recorded
     edge (b, a) with modes (held_b, want_a) proves some schedule acquired
     the two relations in the opposite order; the pair can deadlock iff each
     transaction's want conflicts with the other's hold. *)
  let check_inversion ~txid ~a ~held_a ~b ~want_b =
    match Hashtbl.find_opt edges (b, a) with
    | None -> ()
    | Some reverse ->
      List.iter
        (fun (held_b, want_a) ->
          if
            (not (Lock_mode.compatible want_a held_a))
            && not (Lock_mode.compatible want_b held_b)
          then
            violation
              "lockdep: txn %d acquires relation %d (%s) while holding \
               relation %d (%s), but the opposite order — hold %d (%s), \
               acquire %d (%s) — was also observed; an interleaving of the \
               two schedules deadlocks"
              txid b
              (Lock_mode.to_string want_b)
              a
              (Lock_mode.to_string held_a)
              b
              (Lock_mode.to_string held_b)
              a
              (Lock_mode.to_string want_a))
        reverse

  let grant ~txid resource mode =
    if enabled () then begin
      let locks = Option.value ~default:[] (Hashtbl.find_opt held txid) in
      check_hierarchy ~txid resource locks;
      let prior = List.assoc_opt resource locks in
      let covered =
        match prior with Some m -> Lock_mode.leq mode m | None -> false
      in
      if not covered then begin
        (match resource with
        | Lock_table.Record _ -> ()
        | Lock_table.Relation b when is_nascent ~txid b -> ()
        | Lock_table.Relation b ->
          List.iter
            (fun (res, held_a) ->
              match res with
              | Lock_table.Record _ -> ()
              | Lock_table.Relation a ->
                if a <> b && not (is_nascent ~txid a) then begin
                  check_inversion ~txid ~a ~held_a ~b ~want_b:mode;
                  let cur =
                    Option.value ~default:[] (Hashtbl.find_opt edges (a, b))
                  in
                  if not (List.mem (held_a, mode) cur) then
                    Hashtbl.replace edges (a, b) ((held_a, mode) :: cur)
                end)
            locks);
        let mode =
          match prior with Some m -> Lock_mode.sup m mode | None -> mode
        in
        Hashtbl.replace held txid
          ((resource, mode) :: List.remove_assoc resource locks)
      end
    end
end

let lockdep_reset = Lockdep.reset
let lockdep_grant ~txid resource mode = Lockdep.grant ~txid resource mode
let lockdep_release ~txid = if enabled () then Lockdep.release ~txid
let lockdep_mark_nascent ~txid ~rel_id =
  if enabled () then Lockdep.mark_nascent ~txid ~rel_id
