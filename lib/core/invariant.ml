exception Invariant_violation of string

let override : bool option ref = ref None

let from_env =
  lazy
    (match Sys.getenv_opt "DMX_SANITIZE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let enabled () =
  match !override with Some b -> b | None -> Lazy.force from_env

let set_enabled_for_testing b = override := b

let violation fmt =
  Fmt.kstr (fun s -> raise (Invariant_violation ("DMX_SANITIZE: " ^ s))) fmt

let check_pin_balance ~at bp =
  if enabled () then
    match Dmx_page.Buffer_pool.pinned_pages bp with
    | [] -> ()
    | leaks ->
      violation
        "buffer-pool pin leak detected at %s: %a — every pin must be released \
         by the operation that took it"
        at
        Fmt.(list ~sep:comma (fun ppf (page, pins) -> pf ppf "page %d (%d pin%s)" page pins (if pins = 1 then "" else "s")))
        leaks

let lsn_observer ~source () =
  let last = ref Int64.min_int in
  fun lsn ->
    if enabled () && lsn <= !last then
      violation
        "WAL LSN monotonicity broken in %s: appended LSN %Ld after %Ld — log \
         records must be appended in strictly increasing order"
        source lsn !last;
    last := max !last lsn

let check_span_balance ~at =
  if enabled () && Dmx_obs.Trace.enabled () then
    match Dmx_obs.Trace.depth () with
    | 0 -> ()
    | n ->
      violation
        "trace-span imbalance detected at %s: %d span%s still open — every \
         span entered during an operation must be exited by transaction end"
        at n
        (if n = 1 then "" else "s")

let check_frozen_for_dispatch ~op =
  if enabled () && not (Registry.is_frozen ()) then
    violation
      "relation %s dispatched before Registry.freeze — extensions must be \
       registered and the registry frozen (Services.setup) before any \
       procedure-vector dispatch"
      op
