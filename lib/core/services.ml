open Dmx_page
open Dmx_wal

let m_checkpoints = Dmx_obs.Metrics.counter "ckpt.checkpoints"
let m_ckpt_pages = Dmx_obs.Metrics.counter "ckpt.pages_written"

type checkpoint_stats = {
  ck_lsn : Log_record.lsn;  (** LSN of the [Ckpt_end] record *)
  ck_dirty_pages : int;
  ck_pages_written : int;
  ck_active_txns : int;
  ck_truncated_records : int;
  ck_truncated_bytes : int;
}

type t = {
  disk : Disk.t;
  bp : Buffer_pool.t;
  wal : Wal.t;
  locks : Dmx_lock.Lock_table.t;
  txn_mgr : Dmx_txn.Txn_mgr.t;
  catalog : Dmx_catalog.Catalog.t;
  mutable last_recovery : Recovery.analysis option;
  (* fuzzy-checkpoint policy: 0 disables the corresponding trigger *)
  mutable ckpt_every_records : int;
  mutable ckpt_every_bytes : int;
  mutable ckpt_bytes_mark : int;  (* Wal.appended_bytes at last checkpoint *)
  mutable ckpt_running : bool;  (* re-entrancy guard *)
  mutable last_checkpoint : checkpoint_stats option;
}

(* DMX_CHECKPOINT_EVERY accepts "N" (log records between checkpoints) or
   "Nb"/"Nkb"/"Nmb" (appended log bytes between checkpoints). Unparsable or
   non-positive values disable the policy rather than fail the mount. *)
let checkpoint_policy_of_env () =
  match Sys.getenv_opt "DMX_CHECKPOINT_EVERY" with
  | None | Some "" -> None
  | Some raw ->
    let s = String.lowercase_ascii (String.trim raw) in
    let ends_with suffix =
      let n = String.length s and m = String.length suffix in
      n > m && String.sub s (n - m) m = suffix
    in
    let strip suffix =
      String.sub s 0 (String.length s - String.length suffix)
    in
    let num, mult, is_bytes =
      if ends_with "kb" then (strip "kb", 1024, true)
      else if ends_with "mb" then (strip "mb", 1024 * 1024, true)
      else if ends_with "b" then (strip "b", 1, true)
      else (s, 1, false)
    in
    (match int_of_string_opt num with
    | Some n when n > 0 ->
      Some (if is_bytes then `Bytes (n * mult) else `Records n)
    | Some _ | None -> None)

let set_checkpoint_policy ?(every_records = 0) ?(every_bytes = 0) t =
  t.ckpt_every_records <- max 0 every_records;
  t.ckpt_every_bytes <- max 0 every_bytes

let checkpoint_policy t = (t.ckpt_every_records, t.ckpt_every_bytes)

let checkpoint_due t =
  (t.ckpt_every_records > 0
  &&
  let horizon =
    let c = Wal.last_checkpoint_lsn t.wal in
    if c > Wal.base_lsn t.wal then c else Wal.base_lsn t.wal
  in
  Int64.sub (Wal.last_lsn t.wal) horizon
  >= Int64.of_int t.ckpt_every_records)
  || t.ckpt_every_bytes > 0
     && Wal.appended_bytes t.wal - t.ckpt_bytes_mark >= t.ckpt_every_bytes

(* Fuzzy checkpoint (no quiescing): log [Ckpt_begin]; snapshot the
   active-transaction table and the dirty-page table; force exactly the
   snapshot's pages (each write preceded by the WAL hook, so
   WAL-before-page holds); log [Ckpt_end] carrying both tables and flush.
   Restart analysis seeds from the [Ckpt_begin]. With [truncate] (default),
   the log prefix below min(begin LSN, oldest active transaction's first
   LSN) is then dropped — sound under force-at-commit because every
   committed effect is already durable, so only active transactions' undo
   chains need log retention. The catalog needs no snapshot here: committed
   DDL was saved by the commit-time force hook, and uncommitted DDL belongs
   to an active transaction whose records are retained. *)
let checkpoint ?(truncate = true) t =
  if t.ckpt_running then
    match t.last_checkpoint with
    | Some s -> s
    | None ->
      {
        ck_lsn = 0L;
        ck_dirty_pages = 0;
        ck_pages_written = 0;
        ck_active_txns = 0;
        ck_truncated_records = 0;
        ck_truncated_bytes = 0;
      }
  else begin
    t.ckpt_running <- true;
    Fun.protect
      ~finally:(fun () -> t.ckpt_running <- false)
      (fun () ->
        let wal = t.wal in
        let begin_lsn = Wal.append wal 0 Log_record.Ckpt_begin in
        let active =
          Dmx_txn.Txn_mgr.active_txns t.txn_mgr
          |> List.filter_map (fun (txn : Dmx_txn.Txn.t) ->
                 match Wal.records_of_txn wal txn.Dmx_txn.Txn.id with
                 | [] -> None
                 | newest :: _ as chain ->
                   let first =
                     List.fold_left
                       (fun acc (r : Log_record.t) -> min acc r.lsn)
                       newest.Log_record.lsn chain
                   in
                   let depth =
                     List.fold_left
                       (fun d (r : Log_record.t) ->
                         match r.kind with
                         | Ext _ -> d + 1
                         | Clr _ -> d - 1
                         | _ -> d)
                       0 chain
                   in
                   Some
                     {
                       Log_record.ck_txid = txn.Dmx_txn.Txn.id;
                       ck_first = first;
                       ck_last = newest.Log_record.lsn;
                       ck_undo_depth = max 0 depth;
                     })
          |> List.sort (fun (a : Log_record.ckpt_txn) b ->
                 compare a.ck_txid b.ck_txid)
        in
        let dpt = Buffer_pool.dirty_pages t.bp in
        let written =
          Buffer_pool.checkpoint_writeback t.bp ~pages:(List.map fst dpt)
        in
        let ck_lsn =
          Wal.append wal 0
            (Log_record.Ckpt_end
               { start = begin_lsn; dirty_pages = dpt; active })
        in
        Wal.flush wal;
        let trecords, tbytes =
          if truncate then begin
            let cut =
              List.fold_left
                (fun m (a : Log_record.ckpt_txn) -> min m a.ck_first)
                begin_lsn active
            in
            Wal.truncate_before wal cut
          end
          else (0, 0)
        in
        t.ckpt_bytes_mark <- Wal.appended_bytes wal;
        Dmx_obs.Metrics.incr m_checkpoints;
        Dmx_obs.Metrics.add m_ckpt_pages written;
        if Dmx_obs.Trace.enabled () then
          Dmx_obs.Trace.event "ckpt.complete"
            ~attrs:
              [ ("lsn", Dmx_obs.Obs_json.Int (Int64.to_int ck_lsn));
                ("dirty_pages", Dmx_obs.Obs_json.Int (List.length dpt));
                ("written", Dmx_obs.Obs_json.Int written);
                ("active", Dmx_obs.Obs_json.Int (List.length active));
                ("truncated_records", Dmx_obs.Obs_json.Int trecords);
                ("truncated_bytes", Dmx_obs.Obs_json.Int tbytes) ];
        let stats =
          {
            ck_lsn;
            ck_dirty_pages = List.length dpt;
            ck_pages_written = written;
            ck_active_txns = List.length active;
            ck_truncated_records = trecords;
            ck_truncated_bytes = tbytes;
          }
        in
        t.last_checkpoint <- Some stats;
        stats)
  end

let apply_env_policy t = function
  | `Records n -> t.ckpt_every_records <- n
  | `Bytes n -> t.ckpt_every_bytes <- n

let rec setup ?dir ?disk ?(pool_capacity = 256) () =
  Registry.freeze ();
  let disk, wal, catalog =
    match dir with
    | None ->
      ( (match disk with Some d -> d | None -> Disk.in_memory ()),
        Wal.in_memory (),
        Dmx_catalog.Catalog.create () )
    | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      ( (match disk with
        | Some d -> d
        | None -> Disk.open_file (Filename.concat dir "pages.dmx")),
        Wal.open_file (Filename.concat dir "wal.dmx"),
        Dmx_catalog.Catalog.load ~path:(Filename.concat dir "catalog.dmx") )
  in
  match
    setup_with ~dir ~disk ~wal ~catalog ~pool_capacity
  with
  | t -> t
  | exception e ->
    (* Recovery itself can die (the chaos harness crashes the page store
       mid-recovery). Release the file handles so the caller can retry with a
       fresh [setup] against the same directory. *)
    Wal.abandon wal;
    Disk.close disk;
    raise e

and setup_with ~dir ~disk ~wal ~catalog ~pool_capacity =
  let bp = Buffer_pool.create ~capacity:pool_capacity disk in
  (* WAL rule: undo information must be durable before a dirty page reaches
     the backing store. Extensions are not trusted to thread LSNs through
     every page write, so the hook conservatively hardens the whole log. *)
  Buffer_pool.set_flush_hook bp (fun _lsn -> Wal.flush wal);
  (* Runtime sanitizer (DMX_SANITIZE=1): every append must carry a strictly
     increasing LSN. The observer is installed unconditionally and no-ops
     when the sanitizer is off. *)
  Wal.set_append_observer wal
    (Invariant.lsn_observer
       ~source:(match dir with None -> "wal (in-memory)" | Some d -> "wal " ^ d)
       ());
  (* The I/O counters are always on (the cost model reads them); a probe
     folds them into the common metrics exposition at snapshot time. *)
  Dmx_obs.Metrics.register_probe "io" (fun () ->
      Io_stats.to_metrics (Disk.stats disk));
  (* Resolve the profiler's (vector, slot) keys to registry names. The
     registry is frozen above, so ids are stable for this process. *)
  Dmx_obs.Profile.set_key_namer (function
    | Dmx_obs.Profile.Smethod i -> (
      match Registry.storage_method_name i with
      | name -> Some ("smethod:" ^ name)
      | exception Invalid_argument _ -> None)
    | Dmx_obs.Profile.Attachment i -> (
      match Registry.attachment_name i with
      | name -> Some ("attach:" ^ name)
      | exception Invalid_argument _ -> None)
    | _ -> None);
  let locks = Dmx_lock.Lock_table.create () in
  (* Lockdep mirrors the LSN observer: installed only when the sanitizer is
     on at mount time, so the disabled grant path stays allocation-free. A
     fresh mount starts a fresh order graph. *)
  if Invariant.enabled () then begin
    Invariant.lockdep_reset ();
    Dmx_lock.Lock_table.set_grant_observer locks (fun ~txid resource mode ->
        Invariant.lockdep_grant ~txid resource mode);
    Dmx_lock.Lock_table.set_release_observer locks (fun txid ->
        Invariant.lockdep_release ~txid)
  end;
  let txn_mgr = Dmx_txn.Txn_mgr.create ~wal ~locks () in
  let t =
    {
      disk;
      bp;
      wal;
      locks;
      txn_mgr;
      catalog;
      last_recovery = None;
      ckpt_every_records = 0;
      ckpt_every_bytes = 0;
      ckpt_bytes_mark = Wal.appended_bytes wal;
      ckpt_running = false;
      last_checkpoint = None;
    }
  in
  (* Force step of the commit protocol: all dirty pages plus the catalog
     snapshot when DDL ran. *)
  Dmx_txn.Txn_mgr.set_force_hook txn_mgr (fun () ->
      Buffer_pool.flush_all bp;
      if Dmx_catalog.Catalog.dirty catalog then
        Dmx_catalog.Catalog.save catalog);
  Dmx_txn.Txn_mgr.set_undo_dispatch txn_mgr (Undo.dispatch ~txn_mgr ~bp ~catalog);
  Dmx_txn.Txn_mgr.set_commit_observer txn_mgr (fun () ->
      if checkpoint_due t then ignore (checkpoint t));
  (match checkpoint_policy_of_env () with
  | Some policy -> apply_env_policy t policy
  | None -> ());
  t.last_recovery <- Some (Dmx_txn.Txn_mgr.recover txn_mgr);
  t

let begin_txn t =
  let txn = Dmx_txn.Txn_mgr.begin_txn t.txn_mgr in
  Ctx.make ~txn ~txn_mgr:t.txn_mgr ~bp:t.bp ~catalog:t.catalog

let commit t ctx =
  ignore t;
  (* Before Txn_mgr.commit: close_all_scans inside [finish] would hide the
     leak this check reports. *)
  Invariant.check_scan_balance ~at:"commit" ctx.Ctx.txn;
  Dmx_txn.Txn_mgr.commit ctx.Ctx.txn_mgr ctx.Ctx.txn;
  Invariant.check_pin_balance ~at:"commit" ctx.Ctx.bp;
  Invariant.check_span_balance ~at:"commit"

let abort t ctx =
  ignore t;
  Dmx_txn.Txn_mgr.abort ctx.Ctx.txn_mgr ctx.Ctx.txn;
  Invariant.check_pin_balance ~at:"abort" ctx.Ctx.bp;
  Invariant.check_span_balance ~at:"abort"

let savepoint ctx name = Dmx_txn.Txn_mgr.savepoint ctx.Ctx.txn_mgr ctx.Ctx.txn name

let rollback_to ctx name =
  Dmx_txn.Txn_mgr.rollback_to ctx.Ctx.txn_mgr ctx.Ctx.txn name

let with_txn t f =
  let ctx = begin_txn t in
  match f ctx with
  | Ok v ->
    commit t ctx;
    Ok v
  | Error _ as e ->
    abort t ctx;
    e
  | exception e ->
    if Dmx_txn.Txn.is_active ctx.Ctx.txn then abort t ctx;
    raise e

let close t =
  List.iter
    (fun txn -> Dmx_txn.Txn_mgr.abort t.txn_mgr txn)
    (Dmx_txn.Txn_mgr.active_txns t.txn_mgr);
  Buffer_pool.flush_all t.bp;
  Dmx_catalog.Catalog.save t.catalog;
  Wal.close t.wal;
  Disk.close t.disk;
  Dmx_obs.Trace.flush_sink ()

let simulate_crash t =
  (* Volatile memory vanishes: no force, no catalog save, no clean abort.
     [Wal.crash] also drops written-but-unsynced log bytes (group commit),
     modelling power loss rather than a mere process kill. *)
  Buffer_pool.drop_cache t.bp;
  Wal.crash t.wal;
  Disk.close t.disk

let io_stats t = Disk.stats t.disk

let resolve_deadlock t =
  match Dmx_lock.Deadlock.detect t.locks with
  | None -> None
  | Some victim -> begin
    (match Dmx_txn.Txn_mgr.find_txn t.txn_mgr victim with
    | Some txn -> Dmx_txn.Txn_mgr.abort t.txn_mgr txn
    | None ->
      (* a phantom edge from an extension controller; drop its waits *)
      Dmx_lock.Lock_table.release_all t.locks victim);
    Some victim
  end
