open Dmx_page
open Dmx_wal

type t = {
  disk : Disk.t;
  bp : Buffer_pool.t;
  wal : Wal.t;
  locks : Dmx_lock.Lock_table.t;
  txn_mgr : Dmx_txn.Txn_mgr.t;
  catalog : Dmx_catalog.Catalog.t;
  mutable last_recovery : Recovery.analysis option;
}

let rec setup ?dir ?disk ?(pool_capacity = 256) () =
  Registry.freeze ();
  let disk, wal, catalog =
    match dir with
    | None ->
      ( (match disk with Some d -> d | None -> Disk.in_memory ()),
        Wal.in_memory (),
        Dmx_catalog.Catalog.create () )
    | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      ( (match disk with
        | Some d -> d
        | None -> Disk.open_file (Filename.concat dir "pages.dmx")),
        Wal.open_file (Filename.concat dir "wal.dmx"),
        Dmx_catalog.Catalog.load ~path:(Filename.concat dir "catalog.dmx") )
  in
  match
    setup_with ~dir ~disk ~wal ~catalog ~pool_capacity
  with
  | t -> t
  | exception e ->
    (* Recovery itself can die (the chaos harness crashes the page store
       mid-recovery). Release the file handles so the caller can retry with a
       fresh [setup] against the same directory. *)
    Wal.abandon wal;
    Disk.close disk;
    raise e

and setup_with ~dir ~disk ~wal ~catalog ~pool_capacity =
  let bp = Buffer_pool.create ~capacity:pool_capacity disk in
  (* WAL rule: undo information must be durable before a dirty page reaches
     the backing store. Extensions are not trusted to thread LSNs through
     every page write, so the hook conservatively hardens the whole log. *)
  Buffer_pool.set_flush_hook bp (fun _lsn -> Wal.flush wal);
  (* Runtime sanitizer (DMX_SANITIZE=1): every append must carry a strictly
     increasing LSN. The observer is installed unconditionally and no-ops
     when the sanitizer is off. *)
  Wal.set_append_observer wal
    (Invariant.lsn_observer
       ~source:(match dir with None -> "wal (in-memory)" | Some d -> "wal " ^ d)
       ());
  (* The I/O counters are always on (the cost model reads them); a probe
     folds them into the common metrics exposition at snapshot time. *)
  Dmx_obs.Metrics.register_probe "io" (fun () ->
      Io_stats.to_metrics (Disk.stats disk));
  (* Resolve the profiler's (vector, slot) keys to registry names. The
     registry is frozen above, so ids are stable for this process. *)
  Dmx_obs.Profile.set_key_namer (function
    | Dmx_obs.Profile.Smethod i -> (
      match Registry.storage_method_name i with
      | name -> Some ("smethod:" ^ name)
      | exception Invalid_argument _ -> None)
    | Dmx_obs.Profile.Attachment i -> (
      match Registry.attachment_name i with
      | name -> Some ("attach:" ^ name)
      | exception Invalid_argument _ -> None)
    | _ -> None);
  let locks = Dmx_lock.Lock_table.create () in
  (* Lockdep mirrors the LSN observer: installed only when the sanitizer is
     on at mount time, so the disabled grant path stays allocation-free. A
     fresh mount starts a fresh order graph. *)
  if Invariant.enabled () then begin
    Invariant.lockdep_reset ();
    Dmx_lock.Lock_table.set_grant_observer locks (fun ~txid resource mode ->
        Invariant.lockdep_grant ~txid resource mode);
    Dmx_lock.Lock_table.set_release_observer locks (fun txid ->
        Invariant.lockdep_release ~txid)
  end;
  let txn_mgr = Dmx_txn.Txn_mgr.create ~wal ~locks () in
  let t = { disk; bp; wal; locks; txn_mgr; catalog; last_recovery = None } in
  (* Force step of the commit protocol: all dirty pages plus the catalog
     snapshot when DDL ran. *)
  Dmx_txn.Txn_mgr.set_force_hook txn_mgr (fun () ->
      Buffer_pool.flush_all bp;
      if Dmx_catalog.Catalog.dirty catalog then
        Dmx_catalog.Catalog.save catalog);
  Dmx_txn.Txn_mgr.set_undo_dispatch txn_mgr (Undo.dispatch ~txn_mgr ~bp ~catalog);
  t.last_recovery <- Some (Dmx_txn.Txn_mgr.recover txn_mgr);
  t

let begin_txn t =
  let txn = Dmx_txn.Txn_mgr.begin_txn t.txn_mgr in
  Ctx.make ~txn ~txn_mgr:t.txn_mgr ~bp:t.bp ~catalog:t.catalog

let commit t ctx =
  ignore t;
  Dmx_txn.Txn_mgr.commit ctx.Ctx.txn_mgr ctx.Ctx.txn;
  Invariant.check_pin_balance ~at:"commit" ctx.Ctx.bp;
  Invariant.check_span_balance ~at:"commit"

let abort t ctx =
  ignore t;
  Dmx_txn.Txn_mgr.abort ctx.Ctx.txn_mgr ctx.Ctx.txn;
  Invariant.check_pin_balance ~at:"abort" ctx.Ctx.bp;
  Invariant.check_span_balance ~at:"abort"

let savepoint ctx name = Dmx_txn.Txn_mgr.savepoint ctx.Ctx.txn_mgr ctx.Ctx.txn name

let rollback_to ctx name =
  Dmx_txn.Txn_mgr.rollback_to ctx.Ctx.txn_mgr ctx.Ctx.txn name

let with_txn t f =
  let ctx = begin_txn t in
  match f ctx with
  | Ok v ->
    commit t ctx;
    Ok v
  | Error _ as e ->
    abort t ctx;
    e
  | exception e ->
    if Dmx_txn.Txn.is_active ctx.Ctx.txn then abort t ctx;
    raise e

let close t =
  List.iter
    (fun txn -> Dmx_txn.Txn_mgr.abort t.txn_mgr txn)
    (Dmx_txn.Txn_mgr.active_txns t.txn_mgr);
  Buffer_pool.flush_all t.bp;
  Dmx_catalog.Catalog.save t.catalog;
  Wal.close t.wal;
  Disk.close t.disk;
  Dmx_obs.Trace.flush_sink ()

let simulate_crash t =
  (* Volatile memory vanishes: no force, no catalog save, no clean abort.
     [Wal.crash] also drops written-but-unsynced log bytes (group commit),
     modelling power loss rather than a mere process kill. *)
  Buffer_pool.drop_cache t.bp;
  Wal.crash t.wal;
  Disk.close t.disk

let io_stats t = Disk.stats t.disk

let resolve_deadlock t =
  match Dmx_lock.Deadlock.detect t.locks with
  | None -> None
  | Some victim -> begin
    (match Dmx_txn.Txn_mgr.find_txn t.txn_mgr victim with
    | Some txn -> Dmx_txn.Txn_mgr.abort t.txn_mgr txn
    | None ->
      (* a phantom edge from an extension controller; drop its waits *)
      Dmx_lock.Lock_table.release_all t.locks victim);
    Some victim
  end
