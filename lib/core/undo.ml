open Dmx_wal

(* Chaos-harness mutation point: when set, matching Ext records are silently
   skipped instead of dispatched — a deliberately planted undo bug used to
   prove the torture oracle catches real recovery defects. Never set outside
   mutation runs (bin/dmx_chaos.exe --mutate). *)
let chaos_skip : (Log_record.t -> bool) option ref = ref None [@@dmx.global "UNSAFE"]
let set_chaos_skip f = chaos_skip := f

let dispatch ~txn_mgr ~bp ~catalog txn (r : Log_record.t) =
  match !chaos_skip with
  | Some skip when skip r -> ()
  | _ -> (
  match r.Log_record.kind with
  | Ext { source; rel_id; data } -> begin
    if Invariant.enabled () then
      Invariant.check_undo_above_base ~txid:r.Log_record.txid
        ~lsn:r.Log_record.lsn
        ~base:(Wal.base_lsn (Dmx_txn.Txn_mgr.wal txn_mgr));
    let ctx = Ctx.make ~txn ~txn_mgr ~bp ~catalog in
    match source with
    | Smethod id ->
      let (module M : Intf.STORAGE_METHOD) = Registry.storage_method id in
      M.undo ctx ~rel_id ~data
    | Attachment id ->
      let (module M : Intf.ATTACHMENT) = Registry.attachment id in
      M.undo ctx ~rel_id ~data
    | Catalog ->
      Dmx_catalog.Catalog.undo_op catalog (Dmx_catalog.Catalog.decode_op data)
  end
  | Begin | Commit | Abort | Savepoint _ | Clr _ | Ckpt_begin | Ckpt_end _ ->
    ())
