(** Lint diagnostics: one violation at one source location.

    [file] is a root-relative path with ['/'] separators so diagnostics and
    baseline entries are stable across checkouts and build sandboxes. *)

type t = { rule : string; file : string; line : int; msg : string }

val make : rule:string -> file:string -> line:int -> string -> t

val compare : t -> t -> int
(** Order by file, then line, then rule — the report order. *)

val pp : Format.formatter -> t -> unit
(** [file:line: [rule] message] — the format editors and CI understand. *)
