(** Approximate whole-program model over the analysis roots, shared by the
    interprocedural passes R8 (lock order) and R9 (WAL-before-page).

    Calls are resolved per-[Longident]: [Mod.f] resolves to binding [f] of
    [mod.ml] when such a file is in scope, a bare [f] to the enclosing
    module. Registry procedure-vector dispatch, first-class functions and
    functors are not resolved — DESIGN.md §12 lists the resulting
    false-negative classes; the runtime lockdep covers them dynamically. *)

type event =
  | Acquire of { level : int; mode : string; line : int }
      (** 0 = db, 1 = relation, 2 = page/record; mode ["?"] when the lock
          mode is a runtime parameter at this site *)
  | Log of int
  | Mutate of { what : string; line : int }
  | Call of { callee : string; mode_arg : string option; line : int }

type func = {
  fq_name : string;
  file : string;
  line : int;
  events : event list;  (** source order *)
}

type t

val level_name : int -> string

val load :
  root:string ->
  dirs:string list ->
  parse_impl:
    (file:string ->
    full_path:string ->
    (Parsetree.structure, Lint_diag.t) result) ->
  ml_files_under:(root:string -> string -> string list) ->
  t
(** Parse every [.ml] under [dirs] and build the function table. Files that
    fail to parse are skipped here (the per-file passes report them). *)

val find : t -> string -> func option
val functions : t -> func list

(** {2 R8: static lock-order analysis} *)

type lock_site = {
  ls_fun : string;
  ls_file : string;
  ls_line : int;
  ls_level : int;
  ls_mode : string;
}

type lock_violation = {
  lv_site : lock_site;
  lv_held : int * string;
  lv_kind : [ `Hierarchy | `Reacquire ];
  lv_path : string;  (** witness call path, entry-first *)
}

type lock_result = {
  lr_sites : lock_site list;
  lr_edges : ((int * int) * string) list;
  lr_violations : lock_violation list;
  lr_cycles : (int list * string) list;
}

val lock_analysis : t -> lock_result
(** Propagate lock-held sets from every binding taken as an entry point,
    memoized on (function, held set, mode substitution). Same-level
    conflicting re-acquires are violations but do not become graph edges
    (they would read as self-loop cycles); cycles are only over distinct
    hierarchy levels and fail the build unconditionally. *)

(** {2 R9: interprocedural WAL-before-page} *)

type wal_summary = {
  ws_unlogged : (string * int * string) option;
  ws_logs : bool;
}

type wal_violation = {
  wv_entry : string;
  wv_file : string;
  wv_line : int;
  wv_mut_file : string;
  wv_mut_line : int;
  wv_path : string;
}

type wal_result = {
  wr_summaries : (string * wal_summary) list;
  wr_violations : wal_violation list;
}

val wal_analysis : t -> entry_files:string list -> wal_result
(** For every top-level binding of [entry_files] (minus [*undo*] /
    [*unlogged*] names), prove each path to a page mutator passes a logging
    call first. Violations are only reported when the mutation is reached
    through a call edge — in-body mutations are R4's (syntactic) job. *)
