open Parsetree

let rule_vector_completeness = "vector-completeness"
let rule_error_discipline = "error-discipline"
let rule_exception_swallowing = "exception-swallowing"
let rule_wal_before_page = "wal-before-page"
let rule_mli_coverage = "mli-coverage"
let rule_span_pairing = "span-pairing"
let rule_parse_error = "parse-error"
let rule_global_state = "global-state"
let rule_global_state_unsafe = "global-state-unsafe"
let rule_lock_order = "lock-order"
let rule_lock_cycle = "lock-cycle"
let rule_wal_interproc = "wal-interproc"

let baselinable rule =
  rule = rule_error_discipline
  || rule = rule_exception_swallowing
  || rule = rule_wal_before_page
  || rule = rule_global_state_unsafe
  || rule = rule_lock_order
  || rule = rule_wal_interproc

(* ---- file access ---- *)

let read_file full_path =
  let ic = open_in_bin full_path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let line_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let parse_impl ~file ~full_path =
  let source = read_file full_path in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
    let line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum in
    Error
      (Lint_diag.make ~rule:rule_parse_error ~file ~line:(max 1 line)
         (Fmt.str "cannot parse: %s" (Printexc.to_string exn)))

let parse_intf ~full_path =
  let source = read_file full_path in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf full_path;
  match Parse.interface lexbuf with
  | signature -> Some signature
  | exception _ -> None

(* ---- directory walking ---- *)

let rec walk acc dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
        else
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk acc path
          else if Filename.check_suffix entry ".ml" then path :: acc
          else acc)
      acc (Sys.readdir dir)

let ml_files_under ~root dir =
  let full = Filename.concat root dir in
  walk [] full
  |> List.map (fun p ->
         (* strip "<root>/" back off for root-relative reporting *)
         let prefix = root ^ Filename.dir_sep in
         if String.length p > String.length prefix
            && String.sub p 0 (String.length prefix) = prefix
         then String.sub p (String.length prefix) (String.length p - String.length prefix)
         else p)
  |> List.sort String.compare

(* ---- R2: error discipline ---- *)

let banned_fn = function
  | "failwith" | "invalid_arg" | "exit" -> true
  | _ -> false

let banned_path = function
  | [ f ] | [ "Stdlib"; f ] -> if banned_fn f then Some f else None
  | [ "Obj"; "magic" ] | [ "Stdlib"; "Obj"; "magic" ] -> Some "Obj.magic"
  | _ -> None

let error_discipline ?(allow_exit = false) ~file structure =
  let out = ref [] in
  let add line msg =
    out := Lint_diag.make ~rule:rule_error_discipline ~file ~line msg :: !out
  in
  let super = Ast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> begin
      match banned_path (Longident.flatten txt) with
      | Some "exit" when allow_exit -> ()
      | Some name ->
        add (line_of_loc e.pexp_loc)
          (Fmt.str
             "%s in extension/hot-path code — report failures as (_, Error.t) \
              result so the substrate can veto and roll back"
             name)
      | None -> ()
    end
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
      ->
      add (line_of_loc e.pexp_loc)
        "assert false in extension/hot-path code — report failures as (_, \
         Error.t) result so the substrate can veto and roll back"
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it structure;
  List.rev !out

(* ---- R3: exception swallowing ---- *)

let rec catch_all_kind (p : pattern) =
  match p.ppat_desc with
  | Ppat_any -> `Any
  | Ppat_var _ -> `Var
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catch_all_kind p
  | Ppat_or (a, b) -> begin
    match (catch_all_kind a, catch_all_kind b) with
    | `No, `No -> `No
    | (`Any | `Var), _ | _, (`Any | `Var) -> `Any
  end
  | _ -> `No

let is_unit_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "()"; _ }, None) -> true
  | _ -> false

let exception_swallowing ~file structure =
  let out = ref [] in
  let add line msg =
    out := Lint_diag.make ~rule:rule_exception_swallowing ~file ~line msg :: !out
  in
  let super = Ast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_try (_, cases) ->
      List.iter
        (fun c ->
          if c.pc_guard = None then
            match catch_all_kind c.pc_lhs with
            | `Any ->
              add (line_of_loc c.pc_lhs.ppat_loc)
                "catch-all handler (try ... with _ ->) can swallow veto/abort \
                 signals — match specific exceptions or re-raise"
            | `Var when is_unit_expr c.pc_rhs ->
              add (line_of_loc c.pc_lhs.ppat_loc)
                "catch-all handler discards the exception (with e -> ()) — \
                 match specific exceptions or re-raise"
            | `Var | `No -> ())
        cases
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it structure;
  List.rev !out

(* ---- R4: WAL before page mutation ---- *)

let page_mutator = function
  | [ "Slotted"; ("init" | "insert" | "insert_at" | "update" | "delete" | "make_reusable") ]
  | [ "Buffer_pool"; "alloc" ] -> true
  | _ -> false

let logging_call parts =
  match parts with
  | "Wal" :: _ | "Log_record" :: _ -> true
  (* the common logging services, including the batched entry points the
     bulk modification paths log through: Ctx.log, Ctx.log_many,
     Txn_mgr.log_ext, Txn_mgr.log_ext_many *)
  | [ "Ctx"; l ] | [ "Txn_mgr"; l ] ->
    String.length l >= 3 && String.sub l 0 3 = "log"
  | _ -> begin
    (* accept local helpers by naming convention: log_op, log_delete, ... *)
    match List.rev parts with
    | last :: _ ->
      String.length last >= 3 && String.sub last 0 3 = "log"
    | [] -> false
  end

let exempt_function name =
  let contains sub =
    let n = String.length name and m = String.length sub in
    let rec at i = i + m <= n && (String.sub name i m = sub || at (i + 1)) in
    at 0
  in
  contains "undo" || contains "unlogged"

(* Top-level (and module-nested) value bindings, each a "function scope" for
   the dominance approximation. *)
let rec bindings_of_structure acc structure =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.fold_left
          (fun acc vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> (txt, vb.pvb_loc, vb.pvb_expr) :: acc
            | _ -> acc)
          acc vbs
      | Pstr_module { pmb_expr; _ } -> bindings_of_module_expr acc pmb_expr
      | Pstr_recmodule mbs ->
        List.fold_left (fun acc mb -> bindings_of_module_expr acc mb.pmb_expr) acc mbs
      | _ -> acc)
    acc structure

and bindings_of_module_expr acc me =
  match me.pmod_desc with
  | Pmod_structure structure -> bindings_of_structure acc structure
  | Pmod_constraint (me, _) | Pmod_functor (_, me) -> bindings_of_module_expr acc me
  | _ -> acc

let ident_paths expr0 =
  let out = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> out := (Longident.flatten txt, e.pexp_loc) :: !out
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it expr0;
  List.rev !out

let wal_before_page ~file structure =
  bindings_of_structure [] structure
  |> List.rev
  |> List.filter_map (fun (name, loc, body) ->
         if exempt_function name then None
         else
           let paths = ident_paths body in
           let mutators =
             List.filter (fun (p, _) -> page_mutator p) paths
           in
           if mutators = [] then None
           else if List.exists (fun (p, _) -> logging_call p) paths then None
           else
             let mut_names =
               List.map (fun (p, _) -> String.concat "." p) mutators
               |> List.sort_uniq String.compare
             in
             Some
               (Lint_diag.make ~rule:rule_wal_before_page ~file
                  ~line:(line_of_loc loc)
                  (Fmt.str
                     "%s mutates pages (%s) without a Wal./Log_record./Ctx.log \
                      call in the same body — log undo information before the \
                      page change reaches the buffer pool"
                     name
                     (String.concat ", " mut_names))))

(* ---- R1: vector completeness ---- *)

let mli_register_line full_path =
  match parse_intf ~full_path with
  | None -> None
  | Some signature ->
    List.find_map
      (fun item ->
        match item.psig_desc with
        | Psig_value vd when vd.pval_name.txt = "register" ->
          Some (line_of_loc vd.pval_loc)
        | _ -> None)
      signature

let registered_modules structure =
  let out = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> begin
      match List.rev (Longident.flatten txt) with
      | "register" :: modname :: _ -> out := modname :: !out
      | _ -> ()
    end
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it structure;
  !out

let vector_completeness ~root ~ext_dirs ~factory =
  let factory_full = Filename.concat root factory in
  match parse_impl ~file:factory ~full_path:factory_full with
  | Error d -> [ d ]
  | Ok structure ->
    let registered = registered_modules structure in
    List.concat_map
      (fun (dir, label) ->
        ml_files_under ~root dir
        |> List.filter_map (fun ml ->
               let mli_full = Filename.concat root ml ^ "i" in
               let modname =
                 String.capitalize_ascii
                   Filename.(remove_extension (basename ml))
               in
               match mli_register_line mli_full with
               | None -> None (* helper module, not an extension package *)
               | Some line ->
                 if List.mem modname registered then None
                 else
                   Some
                     (Lint_diag.make ~rule:rule_vector_completeness
                        ~file:(ml ^ "i") ~line
                        (Fmt.str
                           "%s module %s declares [val register] but is not \
                            registered in the default factory (%s) — it would \
                            link but never dispatch"
                           label modname factory))))
      ext_dirs

(* ---- R6: Trace.enter / Trace.exit_span pairing ---- *)

let trace_tail name parts =
  match List.rev parts with
  | last :: modname :: _ -> last = name && modname = "Trace"
  | _ -> false

let span_pairing ~file structure =
  bindings_of_structure [] structure
  |> List.rev
  |> List.filter_map (fun (name, _loc, body) ->
         let paths = ident_paths body in
         let enters =
           List.filter (fun (p, _) -> trace_tail "enter" p) paths
         in
         let has_exit =
           List.exists (fun (p, _) -> trace_tail "exit_span" p) paths
         in
         match enters with
         | (_, loc) :: _ when not has_exit ->
           Some
             (Lint_diag.make ~rule:rule_span_pairing ~file
                ~line:(line_of_loc loc)
                (Fmt.str
                   "%s calls Trace.enter without Trace.exit_span in the same \
                    body — an unclosed span corrupts nesting (and leaks the \
                    profiler frame); close it on every path, or use \
                    Trace.with_span / Ctx.with_span"
                   name))
         | _ -> None)

(* ---- R7: global mutable state inventory ---- *)

type global_entry = {
  g_file : string;
  g_line : int;
  g_name : string;
  g_kind : string;
  g_class : string option;  (* None = unclassified *)
}

let global_classes = [ "ctx-owned"; "config-immutable-after-setup"; "UNSAFE" ]

let mutable_container = function
  | "Hashtbl" | "Buffer" | "Array" | "Bytes" | "Queue" | "Stack" | "Atomic"
  | "Weak" -> true
  | _ -> false

(* record-field names declared [mutable] anywhere in this file — the
   per-file approximation of "record literal with mutable fields" *)
let mutable_field_names structure =
  let out = ref [] in
  let rec go items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_type (_, decls) ->
          List.iter
            (fun d ->
              match d.ptype_kind with
              | Ptype_record labels ->
                List.iter
                  (fun l ->
                    if l.pld_mutable = Asttypes.Mutable then
                      out := l.pld_name.txt :: !out)
                  labels
              | _ -> ())
            decls
        | Pstr_module { pmb_expr; _ } -> go_mod pmb_expr
        | Pstr_recmodule mbs -> List.iter (fun mb -> go_mod mb.pmb_expr) mbs
        | _ -> ())
      items
  and go_mod me =
    match me.pmod_desc with
    | Pmod_structure s -> go s
    | Pmod_constraint (me, _) | Pmod_functor (_, me) -> go_mod me
    | _ -> ()
  in
  go structure;
  !out

let rec mutable_kind ~mutable_fields (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> mutable_kind ~mutable_fields e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> begin
    match Longident.flatten txt with
    | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref cell"
    | [ m; ("create" | "make" | "init" | "make_matrix" | "copy") ]
    | [ "Stdlib"; m; ("create" | "make" | "init" | "make_matrix" | "copy") ]
      when mutable_container m ->
      Some (m ^ " state")
    | _ -> None
  end
  | Pexp_array (_ :: _) -> Some "array literal"
  | Pexp_lazy _ -> Some "lazy (memoizing) cell"
  | Pexp_record (fields, _)
    when List.exists
           (fun (({ txt; _ } : Longident.t Asttypes.loc), _) ->
             match List.rev (Longident.flatten txt) with
             | f :: _ -> List.mem f mutable_fields
             | [] -> false)
           fields -> Some "record with mutable fields"
  | _ -> None

let classification_of_attributes attrs =
  List.find_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "dmx.global" then None
      else
        match a.attr_payload with
        | PStr
            [ { pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _
              }
            ] -> Some (Some s)
        | _ -> Some None (* present but malformed *))
    attrs

let global_state ~file structure =
  let mutable_fields = mutable_field_names structure in
  let entries = ref [] in
  let diags = ref [] in
  let bindings items =
    List.iter
      (fun vb ->
        match (vb.pvb_pat.ppat_desc, mutable_kind ~mutable_fields vb.pvb_expr) with
        | Ppat_var { txt = name; _ }, Some kind ->
          let line = line_of_loc vb.pvb_loc in
          let cls = classification_of_attributes vb.pvb_attributes in
          let g_class = match cls with Some (Some s) -> Some s | _ -> None in
          entries :=
            { g_file = file; g_line = line; g_name = name; g_kind = kind;
              g_class }
            :: !entries;
          (match cls with
          | None ->
            diags :=
              Lint_diag.make ~rule:rule_global_state ~file ~line
                (Fmt.str
                   "module-level mutable state `%s' (%s) has no [@@dmx.global \
                    \"...\"] classification — classify as %s so the \
                    dmx-server refactor can ratchet hidden globals"
                   name kind
                   (String.concat " | " global_classes))
              :: !diags
          | Some None ->
            diags :=
              Lint_diag.make ~rule:rule_global_state ~file ~line
                (Fmt.str
                   "malformed [@@dmx.global] on `%s' — payload must be a \
                    string literal, one of %s"
                   name
                   (String.concat " | " global_classes))
              :: !diags
          | Some (Some c) when not (List.mem c global_classes) ->
            diags :=
              Lint_diag.make ~rule:rule_global_state ~file ~line
                (Fmt.str
                   "unknown [@@dmx.global \"%s\"] class on `%s' — must be one \
                    of %s"
                   c name
                   (String.concat " | " global_classes))
              :: !diags
          | Some (Some "UNSAFE") ->
            diags :=
              Lint_diag.make ~rule:rule_global_state_unsafe ~file ~line
                (Fmt.str
                   "`%s' (%s) is classified UNSAFE — shared mutable state \
                    that must move into Ctx before dmx-server lands"
                   name kind)
              :: !diags
          | Some (Some _) -> ())
        | _ -> ())
      items
  in
  let rec go items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> bindings vbs
        | Pstr_module { pmb_expr; _ } -> go_mod pmb_expr
        | Pstr_recmodule mbs -> List.iter (fun mb -> go_mod mb.pmb_expr) mbs
        | _ -> ())
      items
  and go_mod me =
    match me.pmod_desc with
    | Pmod_structure s -> go s
    | Pmod_constraint (me, _) | Pmod_functor (_, me) -> go_mod me
    | _ -> ()
  in
  go structure;
  (List.rev !entries, List.rev !diags)

(* ---- R5: mli coverage ---- *)

let mli_coverage ~root ~dirs =
  List.concat_map
    (fun dir ->
      ml_files_under ~root dir
      |> List.filter_map (fun ml ->
             if Sys.file_exists (Filename.concat root ml ^ "i") then None
             else
               Some
                 (Lint_diag.make ~rule:rule_mli_coverage ~file:ml ~line:1
                    "no corresponding .mli — every module must declare its \
                     interface (extensions interact through signatures only)")))
    dirs
