type t = { rule : string; file : string; line : int; msg : string }

let make ~rule ~file ~line msg = { rule; file; line; msg }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> begin
    match Int.compare a.line b.line with
    | 0 -> String.compare a.rule b.rule
    | c -> c
  end
  | c -> c

let pp ppf d = Fmt.pf ppf "%s:%d: [%s] %s" d.file d.line d.rule d.msg
