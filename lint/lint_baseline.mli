(** The checked-in violation baseline ([lint/baseline.sexp]).

    Baselinable rules (error-discipline, exception-swallowing,
    wal-before-page) existed in the tree before the linter did; the baseline
    pins their per-file count so the number can only go down. A file whose
    count rises fails the lint; a file whose count drops produces a note
    asking for a baseline regeneration ([--update-baseline]).

    Format: one line per (rule, file) pair,

    {v (error-discipline "lib/wal/wal.ml" 7) v}

    sorted by rule then file. Lines starting with [;] are comments. *)

type t
(** Allowed violation counts keyed by (rule, root-relative file). *)

val empty : t

val load : string -> (t, string) result
(** Parse a baseline file. [Error] describes the first malformed line. A
    missing file is an error: run with [--update-baseline] to create it. *)

val save : string -> (string * string * int) list -> unit
(** [save path counts] writes the (rule, file, count) triples, sorted. *)

val allowed : t -> rule:string -> file:string -> int
(** 0 when the pair has no entry. *)

val entries : t -> (string * string * int) list
