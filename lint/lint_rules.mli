(** The repo-specific lint rules (DESIGN.md §7).

    Each rule is a purely syntactic pass over the parsetree
    ([compiler-libs.common]'s [Parse] + [Ast_iterator]) — no typing, no
    build. [file] arguments are root-relative paths used in diagnostics;
    [full_path] is where the source is read from.

    Baselinable rules (R2 {!error_discipline}, R3 {!exception_swallowing},
    R4 {!wal_before_page}) are enforced against {!Lint_baseline}; the others
    (R1 {!vector_completeness}, R5 {!mli_coverage}, R6 {!span_pairing},
    parse errors) fail unconditionally. *)

val rule_vector_completeness : string
val rule_error_discipline : string
val rule_exception_swallowing : string
val rule_wal_before_page : string
val rule_mli_coverage : string
val rule_span_pairing : string
val rule_parse_error : string
val rule_global_state : string
val rule_global_state_unsafe : string
val rule_lock_order : string
val rule_lock_cycle : string
val rule_wal_interproc : string

val baselinable : string -> bool

val parse_impl :
  file:string -> full_path:string -> (Parsetree.structure, Lint_diag.t) result
(** Parse one [.ml]; a syntax error becomes a [parse-error] diagnostic. *)

val error_discipline :
  ?allow_exit:bool -> file:string -> Parsetree.structure -> Lint_diag.t list
(** R2: no [failwith] / [invalid_arg] / [exit] / [Obj.magic] /
    [assert false] — extension and hot-path code must report failures as
    [(_, Error.t) result] so the substrate can veto and roll back.
    [allow_exit] relaxes the [exit] ban for CLI driver code ([bin/],
    [bench/]) where a process exit status is the interface. *)

val exception_swallowing :
  file:string -> Parsetree.structure -> Lint_diag.t list
(** R3: flag [try ... with _ -> ...] and [try ... with e -> ()] — catch-all
    handlers that can hide veto/abort signals from the substrate. *)

val wal_before_page :
  file:string -> Parsetree.structure -> Lint_diag.t list
(** R4: in storage-method code, a top-level function that calls a
    [Slotted.*] / [Buffer_pool.alloc] page mutator must also contain a
    [Wal.*] / [Log_record.*] / [Ctx.log] / [log_*] call in the same body
    (syntactic approximation of the WAL-before-page discipline). Functions
    whose name contains [undo] or [unlogged] are exempt: undo applies logged
    images and is itself not re-logged. *)

val vector_completeness :
  root:string ->
  ext_dirs:(string * string) list ->
  factory:string ->
  Lint_diag.t list
(** R1: every module in an extension directory whose [.mli] declares
    [val register] (i.e. packages an [Intf.STORAGE_METHOD] /
    [Intf.ATTACHMENT]) must be registered in the default factory —
    [factory]'s source must mention [<Module>.register]. [ext_dirs] pairs a
    root-relative directory with a human label ("storage method" /
    "attachment"). *)

type global_entry = {
  g_file : string;
  g_line : int;
  g_name : string;
  g_kind : string;
  g_class : string option;  (** [None] = unclassified *)
}

val global_state :
  file:string -> Parsetree.structure -> global_entry list * Lint_diag.t list
(** R7: inventory of module-level mutable state — top-level [ref]s,
    [Hashtbl]/[Buffer]/[Array]/... containers, non-empty array literals,
    lazy cells, and record literals with [mutable] fields. Every such
    binding must carry [[@@dmx.global "ctx-owned" |
    "config-immutable-after-setup" | "UNSAFE"]]; missing or invalid
    classifications are strict failures ([global-state]), while [UNSAFE]
    entries are baselinable ([global-state-unsafe]) so the dmx-server
    refactor can burn the list to zero. *)

val mli_coverage : root:string -> dirs:string list -> Lint_diag.t list
(** R5: every [.ml] under the given root-relative directories has a sibling
    [.mli] — extensions interact through declared interfaces only. *)

val span_pairing : file:string -> Parsetree.structure -> Lint_diag.t list
(** R6: any top-level (or module-nested) binding that calls [Trace.enter]
    must also contain a [Trace.exit_span] call in the same body. An
    unclosed span corrupts span nesting and leaks the paired profiler
    frame; prefer [Trace.with_span] / [Ctx.with_span]. Strict (not
    baselinable) — direct [Trace.enter] outside the blessed wrappers is
    only acceptable with explicit pairing. *)

val ml_files_under : root:string -> string -> string list
(** Root-relative paths of the [.ml] files under a root-relative directory
    (recursive, sorted; skips [_build] and dot-directories). *)
