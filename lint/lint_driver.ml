type config = {
  root : string;
  hot_dirs : string list;
  cli_dirs : string list;
  smethod_dir : string;
  attach_dir : string;
  factory_file : string;
  mli_dirs : string list;
  span_dirs : string list;
  global_dirs : string list;
  analysis_dirs : string list;
  wal_entry_dirs : string list;
}

let default_config ~root =
  {
    root;
    hot_dirs = [ "lib/smethod"; "lib/attach"; "lib/txn"; "lib/wal" ];
    cli_dirs = [ "bin"; "bench" ];
    smethod_dir = "lib/smethod";
    attach_dir = "lib/attach";
    factory_file = "lib/db/db.ml";
    mli_dirs = [ "lib" ];
    span_dirs = [ "lib"; "bin" ];
    global_dirs = [ "lib" ];
    analysis_dirs = [ "lib" ];
    wal_entry_dirs = [ "lib/smethod"; "lib/attach" ];
  }

type report = {
  violations : Lint_diag.t list;
  notes : string list;
  checked_files : int;
  globals : Lint_rules.global_entry list;
  lock : Lint_callgraph.lock_result;
  wal : Lint_callgraph.wal_result;
}

let hot_file_diags config =
  let files =
    List.concat_map (Lint_rules.ml_files_under ~root:config.root) config.hot_dirs
    |> List.sort_uniq String.compare
  in
  let diags =
    List.concat_map
      (fun file ->
        let full_path = Filename.concat config.root file in
        match Lint_rules.parse_impl ~file ~full_path with
        | Error d -> [ d ]
        | Ok structure ->
          let in_smethod =
            String.length file >= String.length config.smethod_dir
            && String.sub file 0 (String.length config.smethod_dir)
               = config.smethod_dir
          in
          Lint_rules.error_discipline ~file structure
          @ Lint_rules.exception_swallowing ~file structure
          @ (if in_smethod then Lint_rules.wal_before_page ~file structure
             else []))
      files
  in
  (List.length files, diags)

(* R6 scope is wider than the hot dirs (spans are opened all over lib/ and
   bin/); parse failures there are left to R2/R3's pass or the build. *)
let span_pairing_diags config =
  List.concat_map (Lint_rules.ml_files_under ~root:config.root) config.span_dirs
  |> List.sort_uniq String.compare
  |> List.concat_map (fun file ->
         let full_path = Filename.concat config.root file in
         match Lint_rules.parse_impl ~file ~full_path with
         | Error _ -> []
         | Ok structure -> Lint_rules.span_pairing ~file structure)

(* R2/R3 over the CLI and bench drivers: same discipline as the hot dirs
   except [exit] is allowed (a process exit status is their interface). *)
let cli_file_diags config =
  let files =
    List.concat_map (Lint_rules.ml_files_under ~root:config.root) config.cli_dirs
    |> List.sort_uniq String.compare
  in
  let diags =
    List.concat_map
      (fun file ->
        let full_path = Filename.concat config.root file in
        match Lint_rules.parse_impl ~file ~full_path with
        | Error d -> [ d ]
        | Ok structure ->
          Lint_rules.error_discipline ~allow_exit:true ~file structure
          @ Lint_rules.exception_swallowing ~file structure)
      files
  in
  (List.length files, diags)

(* R7 over every module of the global-state scope. *)
let global_state_pass config =
  List.concat_map (Lint_rules.ml_files_under ~root:config.root) config.global_dirs
  |> List.sort_uniq String.compare
  |> List.fold_left
       (fun (entries, diags) file ->
         let full_path = Filename.concat config.root file in
         match Lint_rules.parse_impl ~file ~full_path with
         | Error _ -> (entries, diags)
         | Ok structure ->
           let e, d = Lint_rules.global_state ~file structure in
           (entries @ e, diags @ d))
       ([], [])

(* R8 + R9 over the whole-program callgraph. *)
let interproc_pass config =
  let cg =
    Lint_callgraph.load ~root:config.root ~dirs:config.analysis_dirs
      ~parse_impl:Lint_rules.parse_impl
      ~ml_files_under:Lint_rules.ml_files_under
  in
  let lock = Lint_callgraph.lock_analysis cg in
  let lock_diags =
    List.map
      (fun (v : Lint_callgraph.lock_violation) ->
        let s = v.lv_site in
        let hl, hm = v.lv_held in
        let what =
          match v.lv_kind with
          | `Hierarchy ->
            Fmt.str
              "acquires %s-level %s while already holding a %s-level %s — \
               out of db -> relation -> record hierarchy order"
              (Lint_callgraph.level_name s.ls_level)
              s.ls_mode
              (Lint_callgraph.level_name hl)
              hm
          | `Reacquire ->
            Fmt.str
              "may re-acquire at %s level in mode %s while holding \
               conflicting mode %s"
              (Lint_callgraph.level_name s.ls_level)
              s.ls_mode hm
        in
        Lint_diag.make ~rule:Lint_rules.rule_lock_order ~file:s.ls_file
          ~line:s.ls_line
          (Fmt.str "%s (in %s; witness path: %s)" what s.ls_fun v.lv_path))
      lock.lr_violations
  in
  let cycle_diags =
    List.map
      (fun (levels, witness) ->
        Lint_diag.make ~rule:Lint_rules.rule_lock_cycle ~file:"lock-order-graph"
          ~line:1
          (Fmt.str
             "cycle in the derived lock-order graph over levels [%s] — the \
              hierarchy is no longer a partial order (witness: %s)"
             (String.concat " -> "
                (List.map Lint_callgraph.level_name levels))
             witness))
      lock.lr_cycles
  in
  let entry_files =
    List.concat_map (Lint_rules.ml_files_under ~root:config.root)
      config.wal_entry_dirs
    |> List.sort_uniq String.compare
  in
  let wal = Lint_callgraph.wal_analysis cg ~entry_files in
  let wal_diags =
    List.map
      (fun (v : Lint_callgraph.wal_violation) ->
        Lint_diag.make ~rule:Lint_rules.rule_wal_interproc ~file:v.wv_file
          ~line:v.wv_line
          (Fmt.str
             "%s reaches a page mutation (%s:%d) with no logging call on the \
              path %s — WAL-before-page must hold across helpers, not just \
              per body"
             v.wv_entry v.wv_mut_file v.wv_mut_line v.wv_path))
      wal.wr_violations
  in
  (lock, wal, lock_diags @ wal_diags, cycle_diags)

let run ?baseline ?(update_baseline = false) config =
  let checked_hot, hot = hot_file_diags config in
  let checked_cli, cli = cli_file_diags config in
  let checked = checked_hot + checked_cli in
  let globals, global_diags = global_state_pass config in
  let lock, wal, interproc_baselinable, cycle_diags = interproc_pass config in
  let strict =
    Lint_rules.vector_completeness ~root:config.root
      ~ext_dirs:
        [ (config.smethod_dir, "storage-method"); (config.attach_dir, "attachment") ]
      ~factory:config.factory_file
    @ Lint_rules.mli_coverage ~root:config.root ~dirs:config.mli_dirs
    @ span_pairing_diags config
    @ cycle_diags
  in
  let strict_hot, baselinable =
    List.partition
      (fun d -> not (Lint_rules.baselinable d.Lint_diag.rule))
      (hot @ cli @ global_diags @ interproc_baselinable)
  in
  let strict = strict @ strict_hot in
  let mk violations notes =
    { violations; notes; checked_files = checked; globals; lock; wal }
  in
  (* group baselinable diagnostics by (rule, file) *)
  let groups : (string * string, Lint_diag.t list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun d ->
      let key = (d.Lint_diag.rule, d.Lint_diag.file) in
      Hashtbl.replace groups key
        (d :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    baselinable;
  let counts =
    Hashtbl.fold (fun (rule, file) ds acc -> (rule, file, List.length ds) :: acc)
      groups []
  in
  match baseline with
  | Some path when update_baseline ->
    Lint_baseline.save path counts;
    mk
      (List.sort Lint_diag.compare strict)
      [ Fmt.str "baseline regenerated: %s (%d entries)" path (List.length counts) ]
  | Some path -> begin
    match Lint_baseline.load path with
    | Error msg ->
      mk
        (List.sort Lint_diag.compare
           (Lint_diag.make ~rule:"baseline" ~file:path ~line:1 msg :: strict))
        []
    | Ok bl ->
      let over, notes =
        Hashtbl.fold
          (fun (rule, file) ds (over, notes) ->
            let n = List.length ds in
            let allowed = Lint_baseline.allowed bl ~rule ~file in
            if n > allowed then
              ( ds @ over,
                Fmt.str
                  "%s: %d %s violation(s) vs %d allowed by the baseline — fix \
                   them, or regenerate lint/baseline.sexp if this regression \
                   is intentional and reviewed"
                  file n rule allowed
                :: notes )
            else if n < allowed then
              ( over,
                Fmt.str
                  "note: %s has %d %s violation(s), baseline allows %d — \
                   tighten with --update-baseline"
                  file n rule allowed
                :: notes )
            else (over, notes))
          groups ([], [])
      in
      (* baseline entries whose file went clean entirely *)
      let stale =
        Lint_baseline.entries bl
        |> List.filter_map (fun (rule, file, count) ->
               if count > 0 && not (Hashtbl.mem groups (rule, file)) then
                 Some
                   (Fmt.str
                      "note: %s has no %s violations left, baseline allows %d \
                       — tighten with --update-baseline"
                      file rule count)
               else None)
      in
      mk
        (List.sort Lint_diag.compare (strict @ over))
        (List.sort String.compare (notes @ stale))
  end
  | None -> mk (List.sort Lint_diag.compare (strict @ baselinable)) []

let ok r = r.violations = []

let pp_analysis ppf r =
  Fmt.pf ppf "== R7: global mutable state inventory ==@.";
  let count c =
    List.length (List.filter (fun g -> g.Lint_rules.g_class = c) r.globals)
  in
  Fmt.pf ppf
    "%d binding(s): %d ctx-owned, %d config-immutable-after-setup, %d UNSAFE, \
     %d unclassified@."
    (List.length r.globals)
    (count (Some "ctx-owned"))
    (count (Some "config-immutable-after-setup"))
    (count (Some "UNSAFE")) (count None);
  List.iter
    (fun (g : Lint_rules.global_entry) ->
      Fmt.pf ppf "  %s:%d %s (%s) -> %s@." g.g_file g.g_line g.g_name g.g_kind
        (Option.value ~default:"UNCLASSIFIED" g.g_class))
    r.globals;
  Fmt.pf ppf "@.== R8: static lock-order analysis ==@.";
  Fmt.pf ppf "%d acquisition site(s), %d order edge(s), %d violation(s), %d \
              cycle(s)@."
    (List.length r.lock.Lint_callgraph.lr_sites)
    (List.length r.lock.Lint_callgraph.lr_edges)
    (List.length r.lock.Lint_callgraph.lr_violations)
    (List.length r.lock.Lint_callgraph.lr_cycles);
  List.iter
    (fun ((a, b), w) ->
      Fmt.pf ppf "  order: %s -> %s (witness: %s)@."
        (Lint_callgraph.level_name a)
        (Lint_callgraph.level_name b)
        w)
    r.lock.Lint_callgraph.lr_edges;
  List.iter
    (fun (v : Lint_callgraph.lock_violation) ->
      let s = v.lv_site in
      let hl, hm = v.lv_held in
      Fmt.pf ppf "  violation (%s): %s:%d %s acquires %s %s holding %s %s \
                  (path: %s)@."
        (match v.lv_kind with
        | `Hierarchy -> "hierarchy"
        | `Reacquire -> "re-acquire")
        s.ls_file s.ls_line s.ls_fun
        (Lint_callgraph.level_name s.ls_level)
        s.ls_mode
        (Lint_callgraph.level_name hl)
        hm v.lv_path)
    r.lock.Lint_callgraph.lr_violations;
  Fmt.pf ppf "@.== R9: interprocedural WAL-before-page ==@.";
  Fmt.pf ppf "%d entry point(s), %d violation(s)@."
    (List.length r.wal.Lint_callgraph.wr_summaries)
    (List.length r.wal.Lint_callgraph.wr_violations);
  List.iter
    (fun (name, (s : Lint_callgraph.wal_summary)) ->
      Fmt.pf ppf "  entry %s: logs=%b unlogged-path=%s@." name s.ws_logs
        (match s.ws_unlogged with
        | None -> "none"
        | Some (f, l, p) -> Fmt.str "%s:%d via %s" f l p))
    r.wal.Lint_callgraph.wr_summaries

let pp_report ppf r =
  List.iter (fun d -> Fmt.pf ppf "%a@." Lint_diag.pp d) r.violations;
  List.iter (fun n -> Fmt.pf ppf "%s@." n) r.notes;
  if ok r then
    Fmt.pf ppf "dmx-lint: %d file(s) checked, no violations@." r.checked_files
  else
    Fmt.pf ppf "dmx-lint: %d file(s) checked, %d violation(s)@." r.checked_files
      (List.length r.violations)
