type config = {
  root : string;
  hot_dirs : string list;
  smethod_dir : string;
  attach_dir : string;
  factory_file : string;
  mli_dirs : string list;
  span_dirs : string list;
}

let default_config ~root =
  {
    root;
    hot_dirs = [ "lib/smethod"; "lib/attach"; "lib/txn"; "lib/wal" ];
    smethod_dir = "lib/smethod";
    attach_dir = "lib/attach";
    factory_file = "lib/db/db.ml";
    mli_dirs = [ "lib" ];
    span_dirs = [ "lib"; "bin" ];
  }

type report = {
  violations : Lint_diag.t list;
  notes : string list;
  checked_files : int;
}

let hot_file_diags config =
  let files =
    List.concat_map (Lint_rules.ml_files_under ~root:config.root) config.hot_dirs
    |> List.sort_uniq String.compare
  in
  let diags =
    List.concat_map
      (fun file ->
        let full_path = Filename.concat config.root file in
        match Lint_rules.parse_impl ~file ~full_path with
        | Error d -> [ d ]
        | Ok structure ->
          let in_smethod =
            String.length file >= String.length config.smethod_dir
            && String.sub file 0 (String.length config.smethod_dir)
               = config.smethod_dir
          in
          Lint_rules.error_discipline ~file structure
          @ Lint_rules.exception_swallowing ~file structure
          @ (if in_smethod then Lint_rules.wal_before_page ~file structure
             else []))
      files
  in
  (List.length files, diags)

(* R6 scope is wider than the hot dirs (spans are opened all over lib/ and
   bin/); parse failures there are left to R2/R3's pass or the build. *)
let span_pairing_diags config =
  List.concat_map (Lint_rules.ml_files_under ~root:config.root) config.span_dirs
  |> List.sort_uniq String.compare
  |> List.concat_map (fun file ->
         let full_path = Filename.concat config.root file in
         match Lint_rules.parse_impl ~file ~full_path with
         | Error _ -> []
         | Ok structure -> Lint_rules.span_pairing ~file structure)

let run ?baseline ?(update_baseline = false) config =
  let checked, hot = hot_file_diags config in
  let strict =
    Lint_rules.vector_completeness ~root:config.root
      ~ext_dirs:
        [ (config.smethod_dir, "storage-method"); (config.attach_dir, "attachment") ]
      ~factory:config.factory_file
    @ Lint_rules.mli_coverage ~root:config.root ~dirs:config.mli_dirs
    @ span_pairing_diags config
  in
  let strict_hot, baselinable =
    List.partition (fun d -> not (Lint_rules.baselinable d.Lint_diag.rule)) hot
  in
  let strict = strict @ strict_hot in
  (* group baselinable diagnostics by (rule, file) *)
  let groups : (string * string, Lint_diag.t list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun d ->
      let key = (d.Lint_diag.rule, d.Lint_diag.file) in
      Hashtbl.replace groups key
        (d :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    baselinable;
  let counts =
    Hashtbl.fold (fun (rule, file) ds acc -> (rule, file, List.length ds) :: acc)
      groups []
  in
  match baseline with
  | Some path when update_baseline ->
    Lint_baseline.save path counts;
    {
      violations = List.sort Lint_diag.compare strict;
      notes =
        [ Fmt.str "baseline regenerated: %s (%d entries)" path (List.length counts) ];
      checked_files = checked;
    }
  | Some path -> begin
    match Lint_baseline.load path with
    | Error msg ->
      {
        violations =
          List.sort Lint_diag.compare
            (Lint_diag.make ~rule:"baseline" ~file:path ~line:1 msg :: strict);
        notes = [];
        checked_files = checked;
      }
    | Ok bl ->
      let over, notes =
        Hashtbl.fold
          (fun (rule, file) ds (over, notes) ->
            let n = List.length ds in
            let allowed = Lint_baseline.allowed bl ~rule ~file in
            if n > allowed then
              ( ds @ over,
                Fmt.str
                  "%s: %d %s violation(s) vs %d allowed by the baseline — fix \
                   them, or regenerate lint/baseline.sexp if this regression \
                   is intentional and reviewed"
                  file n rule allowed
                :: notes )
            else if n < allowed then
              ( over,
                Fmt.str
                  "note: %s has %d %s violation(s), baseline allows %d — \
                   tighten with --update-baseline"
                  file n rule allowed
                :: notes )
            else (over, notes))
          groups ([], [])
      in
      (* baseline entries whose file went clean entirely *)
      let stale =
        Lint_baseline.entries bl
        |> List.filter_map (fun (rule, file, count) ->
               if count > 0 && not (Hashtbl.mem groups (rule, file)) then
                 Some
                   (Fmt.str
                      "note: %s has no %s violations left, baseline allows %d \
                       — tighten with --update-baseline"
                      file rule count)
               else None)
      in
      {
        violations = List.sort Lint_diag.compare (strict @ over);
        notes = List.sort String.compare (notes @ stale);
        checked_files = checked;
      }
  end
  | None ->
    {
      violations = List.sort Lint_diag.compare (strict @ baselinable);
      notes = [];
      checked_files = checked;
    }

let ok r = r.violations = []

let pp_report ppf r =
  List.iter (fun d -> Fmt.pf ppf "%a@." Lint_diag.pp d) r.violations;
  List.iter (fun n -> Fmt.pf ppf "%s@." n) r.notes;
  if ok r then
    Fmt.pf ppf "dmx-lint: %d file(s) checked, no violations@." r.checked_files
  else
    Fmt.pf ppf "dmx-lint: %d file(s) checked, %d violation(s)@." r.checked_files
      (List.length r.violations)
