(** dmx-lint driver: enumerate sources, run {!Lint_rules}, apply the
    {!Lint_baseline}, and render a report. *)

type config = {
  root : string;  (** repo root the relative paths below resolve against *)
  hot_dirs : string list;
      (** R2/R3 scope: extension + recovery-critical directories *)
  smethod_dir : string;  (** R1/R4: storage-method implementations *)
  attach_dir : string;  (** R1: attachment implementations *)
  factory_file : string;  (** R1: the default-factory source *)
  mli_dirs : string list;  (** R5 scope *)
  span_dirs : string list;  (** R6 scope: where Trace spans are opened *)
}

val default_config : root:string -> config
(** The real tree: hot dirs [lib/smethod lib/attach lib/txn lib/wal],
    factory [lib/db/db.ml], mli coverage over all of [lib], span pairing
    over [lib] and [bin]. *)

type report = {
  violations : Lint_diag.t list;
      (** what fails the build: strict-rule hits plus baselinable hits in
          files whose count exceeds the baseline *)
  notes : string list;
      (** non-fatal: stale baseline entries that should be tightened *)
  checked_files : int;
}

val run :
  ?baseline:string -> ?update_baseline:bool -> config -> report
(** Run every rule. With [baseline], baselinable counts are enforced against
    it (and [update_baseline] rewrites it from the current tree instead of
    enforcing). Without [baseline], every violation is fatal — the fixture
    mode used by the self-tests. *)

val pp_report : Format.formatter -> report -> unit

val ok : report -> bool
(** No violations (notes alone don't fail). *)
