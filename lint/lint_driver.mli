(** dmx-lint driver: enumerate sources, run {!Lint_rules}, apply the
    {!Lint_baseline}, and render a report. *)

type config = {
  root : string;  (** repo root the relative paths below resolve against *)
  hot_dirs : string list;
      (** R2/R3 scope: extension + recovery-critical directories *)
  cli_dirs : string list;
      (** R2 (with [exit] allowed) / R3 scope: CLI and bench drivers *)
  smethod_dir : string;  (** R1/R4: storage-method implementations *)
  attach_dir : string;  (** R1: attachment implementations *)
  factory_file : string;  (** R1: the default-factory source *)
  mli_dirs : string list;  (** R5 scope *)
  span_dirs : string list;  (** R6 scope: where Trace spans are opened *)
  global_dirs : string list;  (** R7 scope: global-mutable-state inventory *)
  analysis_dirs : string list;
      (** R8/R9 scope: the whole-program callgraph is built over these *)
  wal_entry_dirs : string list;
      (** R9 entry points: registry mutation slots live here *)
}

val default_config : root:string -> config
(** The real tree: hot dirs [lib/smethod lib/attach lib/txn lib/wal], CLI
    dirs [bin bench], factory [lib/db/db.ml], mli coverage over all of
    [lib], span pairing over [lib] and [bin], global-state inventory and
    callgraph over [lib], R9 entries in [lib/smethod lib/attach]. *)

type report = {
  violations : Lint_diag.t list;
      (** what fails the build: strict-rule hits plus baselinable hits in
          files whose count exceeds the baseline *)
  notes : string list;
      (** non-fatal: stale baseline entries that should be tightened *)
  checked_files : int;
  globals : Lint_rules.global_entry list;  (** the full R7 inventory *)
  lock : Lint_callgraph.lock_result;  (** R8 sites / edges / violations *)
  wal : Lint_callgraph.wal_result;  (** R9 summaries / violations *)
}

val run :
  ?baseline:string -> ?update_baseline:bool -> config -> report
(** Run every rule. With [baseline], baselinable counts are enforced against
    it (and [update_baseline] rewrites it from the current tree instead of
    enforcing). Without [baseline], every violation is fatal — the fixture
    mode used by the self-tests. *)

val pp_report : Format.formatter -> report -> unit

val pp_analysis : Format.formatter -> report -> unit
(** Render the full concurrency-readiness analysis (R7 inventory, R8 lock
    graph, R9 entry summaries) — the CI build artifact behind
    [dmx_lint --report]. *)

val ok : report -> bool
(** No violations (notes alone don't fail). *)
