type t = (string * string, int) Hashtbl.t

let empty : t = Hashtbl.create 1

let parse_line line =
  try Scanf.sscanf line " (%s@ %S %d)" (fun rule file count -> Some (rule, file, count))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let load path =
  if not (Sys.file_exists path) then
    Error
      (Fmt.str
         "baseline file %s not found — run dmx_lint with --update-baseline to \
          create it"
         path)
  else begin
    let ic = open_in path in
    let tbl : t = Hashtbl.create 64 in
    let bad = ref None in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         let trimmed = String.trim line in
         if trimmed <> "" && not (String.length trimmed > 0 && trimmed.[0] = ';')
         then begin
           match parse_line trimmed with
           | Some (rule, file, count) -> Hashtbl.replace tbl (rule, file) count
           | None ->
             if !bad = None then
               bad := Some (Fmt.str "%s:%d: malformed baseline entry %S" path !lineno trimmed)
         end
       done
     with End_of_file -> ());
    close_in ic;
    match !bad with None -> Ok tbl | Some msg -> Error msg
  end

let save path counts =
  let sorted =
    List.sort
      (fun (r1, f1, _) (r2, f2, _) ->
        match String.compare r1 r2 with 0 -> String.compare f1 f2 | c -> c)
      counts
  in
  let oc = open_out path in
  output_string oc
    ";; dmx-lint baseline — pins the pre-linter violation counts so they can\n\
     ;; only go down. Regenerate (from the repo root) with:\n\
     ;;   dune exec bin/dmx_lint.exe -- --root . --baseline lint/baseline.sexp --update-baseline\n";
  List.iter
    (fun (rule, file, count) ->
      if count > 0 then Printf.fprintf oc "(%s %S %d)\n" rule file count)
    sorted;
  close_out oc

let allowed (t : t) ~rule ~file =
  Option.value ~default:0 (Hashtbl.find_opt t (rule, file))

let entries (t : t) =
  Hashtbl.fold (fun (rule, file) count acc -> (rule, file, count) :: acc) t []
  |> List.sort compare
