(* Whole-program model for the interprocedural lint passes (R8, R9).

   The callgraph is approximate and purely syntactic: every [.ml] under the
   analysis roots is parsed, top-level (and module-nested) value bindings
   become functions, and calls are resolved per-[Longident] — a reference
   [Mod.f] resolves to the binding [f] of the file [mod.ml] when one exists,
   a bare [f] resolves within the current module. Dispatch through the
   registry procedure vectors, first-class functions, and functor
   applications is NOT resolved; those edges are the runtime lockdep's job
   (DESIGN.md section 12 lists the false-negative classes). *)

open Parsetree

(* ---- lock levels: the db -> relation -> page/record hierarchy ---- *)

let level_relation = 1
let level_record = 2

let level_name = function
  | 0 -> "db"
  | 1 -> "relation"
  | 2 -> "record"
  | _ -> "?"

(* Lock modes as strings so an unknown (parameter-passed) mode can flow
   through the analysis without inventing a value. *)
let known_mode = function
  | "IS" | "IX" | "S" | "SIX" | "X" -> true
  | _ -> false

let modes_conflict a b =
  (* mirror of Lock_mode.compatible, on the string encoding; unknown modes
     are treated as non-conflicting to avoid false positives *)
  match (a, b) with
  | ("IS" | "IX" | "S" | "SIX"), "IS" | "IS", ("IX" | "S" | "SIX") -> false
  | "IX", "IX" | "S", "S" -> false
  | _ ->
    if known_mode a && known_mode b then true
    else false

(* ---- events ---- *)

type event =
  | Acquire of { level : int; mode : string; line : int }
  | Log of int
  | Mutate of { what : string; line : int }
  | Call of { callee : string; mode_arg : string option; line : int }

type func = {
  fq_name : string;  (* "Heap.insert" *)
  file : string;  (* root-relative *)
  line : int;
  events : event list;  (* source order *)
}

type t = {
  funcs : (string, func) Hashtbl.t;  (* fq_name -> func *)
  order : string list;  (* deterministic iteration order *)
}

(* ---- extraction ---- *)

let line_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_lnum
let offset_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_cnum

let page_mutator parts =
  match parts with
  | [ "Slotted";
      ("init" | "insert" | "insert_at" | "update" | "delete" | "make_reusable")
    ]
  | [ "Buffer_pool"; "alloc" ] -> true
  | _ -> false

let logging_call parts =
  match parts with
  | "Wal" :: _ | "Log_record" :: _ -> true
  | [ "Ctx"; l ] | [ "Txn_mgr"; l ] ->
    String.length l >= 3 && String.sub l 0 3 = "log"
  | _ -> begin
    match List.rev parts with
    | last :: _ -> String.length last >= 3 && String.sub last 0 3 = "log"
    | [] -> false
  end

(* Strip library wrappers and Stdlib so [Dmx_txn.Txn_mgr.log_ext] and
   [Txn_mgr.log_ext] resolve identically. *)
let strip_prefixes parts =
  List.filter
    (fun p ->
      not
        (p = "Stdlib"
        || (String.length p > 4 && String.sub p 0 4 = "Dmx_")))
    parts

let rec constr_level (e : expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> begin
    match List.rev (Longident.flatten txt) with
    | "Db" :: _ -> Some 0
    | "Relation" :: _ -> Some level_relation
    | "Record" :: _ -> Some level_record
    | _ -> None
  end
  | Pexp_constraint (e, _) -> constr_level e
  | _ -> None

let rec mode_of_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } | Pexp_construct ({ txt; _ }, None) -> begin
    match List.rev (Longident.flatten txt) with
    | m :: _ when known_mode m -> Some m
    | _ -> None
  end
  | Pexp_constraint (e, _) -> mode_of_expr e
  | _ -> None

let acquire_fn parts =
  match strip_prefixes parts with
  | [ "Ctx"; "lock" ] | [ "Lock_table"; ("acquire" | "enqueue") ] -> true
  | _ -> false

(* Collect events of one binding body, in source order. *)
let events_of_body ~modname ~local_bindings body =
  let raw = ref [] in
  let push off ev = raw := (off, ev) :: !raw in
  let super = Ast_iterator.default_iterator in
  let rec expr it (e : expression) =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, args) ->
      let parts = Longident.flatten txt in
      (if acquire_fn parts then begin
         (* extract the hierarchy level from the resource constructor and
            the mode from the ~mode argument; a site whose resource is a
            runtime value is invisible here (documented false negative —
            the runtime lockdep covers it) *)
         let level =
           List.fold_left
             (fun acc (_, a) ->
               match acc with Some _ -> acc | None -> constr_level a)
             None args
         in
         let mode =
           List.fold_left
             (fun acc (lbl, a) ->
               match (acc, lbl) with
               | Some _, _ -> acc
               | None, Asttypes.Labelled "mode" -> mode_of_expr a
               | None, _ -> None)
             None args
         in
         match level with
         | Some level ->
           let mode = Option.value ~default:"?" mode in
           push (offset_of_loc pexp_loc)
             (Acquire { level; mode; line = line_of_loc pexp_loc })
         | None -> ()
       end
       else if page_mutator (strip_prefixes parts) then
         push (offset_of_loc pexp_loc)
           (Mutate
              { what = String.concat "." parts; line = line_of_loc pexp_loc })
       else if logging_call (strip_prefixes parts) then
         push (offset_of_loc pexp_loc) (Log (line_of_loc pexp_loc))
       else begin
         (* a call that may resolve to a known binding; remember a Lock_mode
            constant argument so one-line lock helpers can be specialized *)
         let mode_arg =
           List.fold_left
             (fun acc (_, a) ->
               match acc with Some _ -> acc | None -> mode_of_expr a)
             None args
         in
         let callee =
           match strip_prefixes parts with
           | [ f ] when Hashtbl.mem local_bindings f -> Some (modname ^ "." ^ f)
           | ps -> begin
             match List.rev ps with
             | f :: m :: _ -> Some (m ^ "." ^ f)
             | _ -> None
           end
         in
         match callee with
         | Some callee ->
           push (offset_of_loc pexp_loc)
             (Call { callee; mode_arg; line = line_of_loc pexp_loc })
         | None -> ()
       end);
      (* recurse into the arguments only — revisiting the function ident
         would double-count the site as a bare reference *)
      List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
    | _ -> expr_other it e
  and expr_other it (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
      (* bare references (pipelines, partial application, function-valued
         args): mutators and loggers still count; call edges only when the
         target resolves locally or is qualified *)
      let parts = strip_prefixes (Longident.flatten txt) in
      if page_mutator parts then
        push (offset_of_loc e.pexp_loc)
          (Mutate
             {
               what = String.concat "." (Longident.flatten txt);
               line = line_of_loc e.pexp_loc;
             })
      else if logging_call parts then
        push (offset_of_loc e.pexp_loc) (Log (line_of_loc e.pexp_loc))
      else begin
        match parts with
        | [ f ] when Hashtbl.mem local_bindings f ->
          push (offset_of_loc e.pexp_loc)
            (Call
               {
                 callee = modname ^ "." ^ f;
                 mode_arg = None;
                 line = line_of_loc e.pexp_loc;
               })
        | f :: _ :: _ -> begin
          match List.rev parts with
          | g :: m :: _ when f <> g ->
            push (offset_of_loc e.pexp_loc)
              (Call
                 {
                   callee = m ^ "." ^ g;
                   mode_arg = None;
                   line = line_of_loc e.pexp_loc;
                 })
          | _ -> ()
        end
        | _ -> ()
      end
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it body;
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !raw |> List.map snd

(* Top-level and module-nested value bindings of a structure. *)
let rec value_bindings acc structure =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.fold_left
          (fun acc vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> (txt, vb.pvb_loc, vb.pvb_expr) :: acc
            | _ -> acc)
          acc vbs
      | Pstr_module { pmb_expr; _ } -> value_bindings_of_mod acc pmb_expr
      | Pstr_recmodule mbs ->
        List.fold_left
          (fun acc mb -> value_bindings_of_mod acc mb.pmb_expr)
          acc mbs
      | _ -> acc)
    acc structure

and value_bindings_of_mod acc me =
  match me.pmod_desc with
  | Pmod_structure s -> value_bindings acc s
  | Pmod_constraint (me, _) | Pmod_functor (_, me) ->
    value_bindings_of_mod acc me
  | _ -> acc

let modname_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

let load ~root ~dirs ~parse_impl ~ml_files_under =
  let files =
    List.concat_map (ml_files_under ~root) dirs |> List.sort_uniq String.compare
  in
  let t = { funcs = Hashtbl.create 512; order = [] } in
  let order = ref [] in
  List.iter
    (fun file ->
      let full_path = Filename.concat root file in
      match parse_impl ~file ~full_path with
      | Error _ -> () (* parse errors are reported by the per-file passes *)
      | Ok structure ->
        let modname = modname_of_file file in
        let bindings = List.rev (value_bindings [] structure) in
        let local = Hashtbl.create 32 in
        List.iter (fun (n, _, _) -> Hashtbl.replace local n ()) bindings;
        List.iter
          (fun (name, loc, body) ->
            let fq_name = modname ^ "." ^ name in
            let events = events_of_body ~modname ~local_bindings:local body in
            let f =
              { fq_name; file; line = line_of_loc loc; events }
            in
            (* later bindings of the same name shadow earlier ones, which
               matches OCaml scoping for the common [let x ... let x] case *)
            if not (Hashtbl.mem t.funcs fq_name) then order := fq_name :: !order;
            Hashtbl.replace t.funcs fq_name f)
          bindings)
    files;
  { t with order = List.rev !order }

let find t fq = Hashtbl.find_opt t.funcs fq
let functions t = List.filter_map (find t) t.order

(* ==== R8: static lock-order analysis ==================================== *)

(* Held-lock summaries are small sets of (level, mode); the analysis is
   context-sensitive in that summary, memoized on (function, held, mode
   substitution for '?' acquires). *)

module Held = struct
  type t = (int * string) list (* sorted, deduped *)

  let empty = []
  let add (l, m) t = List.sort_uniq compare ((l, m) :: t)
  let max_level t = List.fold_left (fun acc (l, _) -> max acc l) (-1) t

  let conflicting_at lvl mode t =
    List.filter (fun (l, m) -> l = lvl && modes_conflict m mode) t
end

type lock_site = {
  ls_fun : string;
  ls_file : string;
  ls_line : int;
  ls_level : int;
  ls_mode : string;
}

type lock_violation = {
  lv_site : lock_site;
  lv_held : int * string;  (* the held (level, mode) that makes it invalid *)
  lv_kind : [ `Hierarchy | `Reacquire ];
  lv_path : string;  (* one witness call path, entry-first *)
}

type lock_result = {
  lr_sites : lock_site list;
  lr_edges : ((int * int) * string) list;  (* (held level -> acquired level), witness *)
  lr_violations : lock_violation list;
  lr_cycles : (int list * string) list;  (* level cycle, witness description *)
}

let lock_analysis t =
  let sites = ref [] in
  let edges : (int * int, string) Hashtbl.t = Hashtbl.create 8 in
  let violations : (string * int * int * string * int * string, lock_violation) Hashtbl.t
      =
    Hashtbl.create 16
  in
  let memo : (string * Held.t * string option, Held.t) Hashtbl.t =
    Hashtbl.create 256
  in
  let in_progress : (string * Held.t * string option, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  (* [path] is entry-first, used only for witness strings. *)
  let rec analyze fq held subst path =
    let key = (fq, held, subst) in
    match Hashtbl.find_opt memo key with
    | Some out -> out
    | None ->
      if Hashtbl.mem in_progress key then held
      else begin
        match find t fq with
        | None -> held
        | Some f ->
          Hashtbl.replace in_progress key ();
          let path = path @ [ fq ] in
          let held =
            List.fold_left
              (fun held ev ->
                match ev with
                | Acquire { level; mode; line } ->
                  let mode =
                    if mode = "?" then Option.value ~default:"?" subst
                    else mode
                  in
                  let site =
                    {
                      ls_fun = fq;
                      ls_file = f.file;
                      ls_line = line;
                      ls_level = level;
                      ls_mode = mode;
                    }
                  in
                  sites := site :: !sites;
                  let witness = String.concat " -> " path in
                  (* order-graph edges between distinct levels; a site that
                     violates the hierarchy (coarser-after-finer) is reported
                     below and deliberately contributes no edge — the graph
                     records the intended order, violations the deviations,
                     and a pinned deviation must not also read as an
                     unpinnable cycle *)
                  List.iter
                    (fun (hl, _) ->
                      if hl < level && not (Hashtbl.mem edges (hl, level))
                      then Hashtbl.replace edges (hl, level) witness)
                    held;
                  (* out-of-hierarchy: acquiring a coarser level than one
                     already held *)
                  if Held.max_level held > level then begin
                    let hl, hm =
                      List.find (fun (l, _) -> l > level) held
                    in
                    let k = (f.file, line, level, mode, hl, hm) in
                    if not (Hashtbl.mem violations k) then
                      Hashtbl.replace violations k
                        {
                          lv_site = site;
                          lv_held = (hl, hm);
                          lv_kind = `Hierarchy;
                          lv_path = witness;
                        }
                  end;
                  (* conflicting-mode re-acquire at the same level *)
                  (match Held.conflicting_at level mode held with
                  | (hl, hm) :: _ ->
                    let k = (f.file, line, level, mode, hl, hm) in
                    if not (Hashtbl.mem violations k) then
                      Hashtbl.replace violations k
                        {
                          lv_site = site;
                          lv_held = (hl, hm);
                          lv_kind = `Reacquire;
                          lv_path = witness;
                        }
                  | [] -> ());
                  Held.add (level, mode) held
                | Call { callee; mode_arg; line = _ } ->
                  analyze callee held mode_arg path
                | Log _ | Mutate _ -> held)
              held f.events
          in
          Hashtbl.remove in_progress key;
          Hashtbl.replace memo key held;
          held
      end
  in
  List.iter (fun f -> ignore (analyze f.fq_name Held.empty None [])) (functions t);
  (* cycles in the derived level-order graph *)
  let edge_list =
    Hashtbl.fold (fun e w acc -> (e, w) :: acc) edges []
    |> List.sort compare
  in
  let levels =
    List.concat_map (fun ((a, b), _) -> [ a; b ]) edge_list
    |> List.sort_uniq compare
  in
  let cycles = ref [] in
  (* tiny graph (<= 3 nodes): look for any back edge closing a directed
     cycle, reported once per node pair / self loop *)
  List.iter
    (fun ((a, b), w) ->
      if a = b then cycles := ([ a ], w) :: !cycles
      else if a > b && Hashtbl.mem edges (b, a) then
        let w' = Hashtbl.find edges (b, a) in
        cycles := ([ b; a ], w ^ " / " ^ w') :: !cycles)
    edge_list;
  ignore levels;
  {
    lr_sites = List.rev !sites;
    lr_edges = edge_list;
    lr_violations =
      Hashtbl.fold (fun _ v acc -> v :: acc) violations []
      |> List.sort (fun a b ->
             compare
               (a.lv_site.ls_file, a.lv_site.ls_line, a.lv_site.ls_mode)
               (b.lv_site.ls_file, b.lv_site.ls_line, b.lv_site.ls_mode));
    lr_cycles = List.sort compare !cycles;
  }

(* ==== R9: interprocedural WAL-before-page dataflow ====================== *)

type wal_summary = {
  (* first transitive page mutation not preceded by a log call within this
     function, assuming the caller has not logged yet *)
  ws_unlogged : (string * int * string) option;  (* file, line, path *)
  ws_logs : bool;  (* the function performs a logging call on its path *)
}

type wal_violation = {
  wv_entry : string;
  wv_file : string;
  wv_line : int;  (* entry binding line *)
  wv_mut_file : string;
  wv_mut_line : int;
  wv_path : string;
}

type wal_result = {
  wr_summaries : (string * wal_summary) list;
  wr_violations : wal_violation list;
}

let exempt_name name =
  let contains sub =
    let n = String.length name and m = String.length sub in
    let rec at i = i + m <= n && (String.sub name i m = sub || at (i + 1)) in
    at 0
  in
  contains "undo" || contains "unlogged"

let wal_analysis t ~entry_files =
  let memo : (string, wal_summary) Hashtbl.t = Hashtbl.create 256 in
  let in_progress : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec summarize fq =
    match Hashtbl.find_opt memo fq with
    | Some s -> s
    | None ->
      if Hashtbl.mem in_progress fq then { ws_unlogged = None; ws_logs = false }
      else begin
        match find t fq with
        | None -> { ws_unlogged = None; ws_logs = false }
        | Some f ->
          Hashtbl.replace in_progress fq ();
          let logged = ref false in
          let first = ref None in
          List.iter
            (fun ev ->
              match ev with
              | Log _ -> logged := true
              | Mutate { what; line } ->
                if (not !logged) && !first = None then
                  first := Some (f.file, line, Fmt.str "%s (%s)" fq what)
              | Call { callee; line; _ } ->
                let s = summarize callee in
                (if (not !logged) && !first = None then
                   match s.ws_unlogged with
                   | Some (mf, ml, mpath) ->
                     first :=
                       Some
                         ( mf,
                           ml,
                           Fmt.str "%s (%s:%d) -> %s" fq f.file line mpath )
                   | None -> ());
                if s.ws_logs then logged := true
              | Acquire _ -> ())
            f.events;
          Hashtbl.remove in_progress fq;
          let s = { ws_unlogged = !first; ws_logs = !logged } in
          Hashtbl.replace memo fq s;
          s
      end
  in
  let entries =
    functions t
    |> List.filter (fun f ->
           List.mem f.file entry_files
           &&
           let name =
             match String.rindex_opt f.fq_name '.' with
             | Some i ->
               String.sub f.fq_name (i + 1)
                 (String.length f.fq_name - i - 1)
             | None -> f.fq_name
           in
           not (exempt_name name))
  in
  let summaries =
    List.map (fun f -> (f.fq_name, summarize f.fq_name)) entries
  in
  let violations =
    List.filter_map
      (fun f ->
        match summarize f.fq_name with
        | { ws_unlogged = Some (mf, ml, path); _ } ->
          (* the syntactic rule R4 already reports mutations in the entry's
             own body; R9 adds only the cross-function paths (depth >= 1) *)
          if String.index_opt path '>' = None then None
          else
            Some
              {
                wv_entry = f.fq_name;
                wv_file = f.file;
                wv_line = f.line;
                wv_mut_file = mf;
                wv_mut_line = ml;
                wv_path = path;
              }
        | _ -> None)
      entries
  in
  { wr_summaries = summaries; wr_violations = violations }
