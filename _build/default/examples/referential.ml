(* Referential integrity and triggers: a small order-management schema with
   cascaded deletes across two levels (customer -> order -> line item), a
   deferred balance constraint, and an audit trigger — the paper's attachment
   examples working together.

   Run with: dune exec examples/referential.exe *)

open Dmx_value
module Db = Dmx_db.Db
module Query = Dmx_query.Query
module Error = Dmx_core.Error

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %s" what (Error.to_string e))

let audit : string list ref = ref []

let () =
  Db.register_defaults ();
  (* Trigger functions are OCaml procedures registered at the factory. *)
  Dmx_attach.Trigger.register_function "audit_orders" (fun _ctx fire ->
      let open Dmx_attach.Trigger in
      let what =
        match fire.fire_event with
        | On_insert -> "insert"
        | On_update -> "update"
        | On_delete -> "delete"
      in
      audit := Fmt.str "%s on %s" what fire.fire_relation.rel_name :: !audit;
      Ok ());
  let db = Db.open_database () in

  let customer =
    Schema.make_exn
      [
        Schema.column ~nullable:false "cust_id" Value.Tint;
        Schema.column "cust_name" Value.Tstring;
      ]
  in
  let order =
    Schema.make_exn
      [
        Schema.column ~nullable:false "order_id" Value.Tint;
        Schema.column ~nullable:false "cust_id" Value.Tint;
        Schema.column "total" Value.Tint;
      ]
  in
  let item =
    Schema.make_exn
      [
        Schema.column ~nullable:false "item_id" Value.Tint;
        Schema.column ~nullable:false "order_id" Value.Tint;
        Schema.column "amount" Value.Tint;
      ]
  in

  ignore
    (ok "setup"
       (Db.with_txn db (fun ctx ->
            ignore (ok "c" (Db.create_relation db ctx ~name:"customer" ~schema:customer ()));
            ignore (ok "o" (Db.create_relation db ctx ~name:"orders" ~schema:order ()));
            ignore (ok "i" (Db.create_relation db ctx ~name:"item" ~schema:item ()));
            (* orders.cust_id -> customer.cust_id, cascading *)
            ok "fk1"
              (Db.create_attachment db ctx ~relation:"orders"
                 ~attachment_type:"refint" ~name:"order_customer"
                 ~attrs:
                   [ ("fields", "cust_id"); ("parent", "customer");
                     ("parent_fields", "cust_id"); ("on_delete", "cascade") ]
                 ());
            (* item.order_id -> orders.order_id, cascading: deletes chain *)
            ok "fk2"
              (Db.create_attachment db ctx ~relation:"item"
                 ~attachment_type:"refint" ~name:"item_order"
                 ~attrs:
                   [ ("fields", "order_id"); ("parent", "orders");
                     ("parent_fields", "order_id"); ("on_delete", "cascade") ]
                 ());
            (* a deferred constraint: order totals stay under a limit when the
               transaction commits *)
            ok "limit"
              (Db.create_attachment db ctx ~relation:"orders"
                 ~attachment_type:"check" ~name:"credit_limit"
                 ~attrs:[ ("predicate", "total <= 1000"); ("deferred", "true") ]
                 ());
            ok "audit"
              (Db.create_attachment db ctx ~relation:"orders"
                 ~attachment_type:"trigger" ~name:"order_audit"
                 ~attrs:
                   [ ("function", "audit_orders");
                     ("events", "insert,update,delete") ]
                 ());
            Ok ())));

  ignore
    (ok "populate"
       (Db.with_txn db (fun ctx ->
            let ins rel r = ignore (ok "ins" (Db.insert db ctx ~relation:rel r)) in
            ins "customer" [| Value.int 1; String "acme" |];
            ins "customer" [| Value.int 2; String "globex" |];
            ins "orders" [| Value.int 10; Value.int 1; Value.int 500 |];
            ins "orders" [| Value.int 11; Value.int 1; Value.int 700 |];
            ins "orders" [| Value.int 12; Value.int 2; Value.int 900 |];
            ins "item" [| Value.int 100; Value.int 10; Value.int 250 |];
            ins "item" [| Value.int 101; Value.int 10; Value.int 250 |];
            ins "item" [| Value.int 102; Value.int 11; Value.int 700 |];
            ins "item" [| Value.int 103; Value.int 12; Value.int 900 |];
            Ok ())));

  let count ctx rel =
    List.length (ok "q" (Db.query db ctx (Query.select rel) ()))
  in

  (* --- orphan veto ----------------------------------------------------- *)
  ignore
    (ok "orphan"
       (Db.with_txn db (fun ctx ->
            (match
               Db.insert db ctx ~relation:"orders"
                 [| Value.int 99; Value.int 42; Value.int 1 |]
             with
            | Error e -> Fmt.pr "orphan order rejected: %s@." (Error.to_string e)
            | Ok _ -> Fmt.pr "orphan order ACCEPTED?!@.");
            Ok ())));

  (* --- cascading deletes across two levels ----------------------------- *)
  ignore
    (ok "cascade"
       (Db.with_txn db (fun ctx ->
            Fmt.pr "@.before cascade: %d customers, %d orders, %d items@."
              (count ctx "customer") (count ctx "orders") (count ctx "item");
            (* delete customer 1: orders 10,11 cascade; items 100..102 chain *)
            let rows =
              ok "find" (Db.query db ctx (Query.select ~where:"cust_id = 1" "customer") ())
            in
            ignore rows;
            let desc = ok "rel" (Db.relation db ctx "customer") in
            let scan =
              ok "scan" (Dmx_core.Relation.scan ctx desc
                           ~filter:(Dmx_expr.Parse.parse_exn customer "cust_id = 1") ())
            in
            (match scan.Dmx_core.Intf.rs_next () with
            | Some (key, _) ->
              scan.rs_close ();
              ignore (ok "cascade delete" (Db.delete db ctx ~relation:"customer" key))
            | None -> failwith "customer 1 not found");
            Fmt.pr "after cascade:  %d customers, %d orders, %d items@."
              (count ctx "customer") (count ctx "orders") (count ctx "item");
            Fmt.pr "audit log: %a@."
              Fmt.(list ~sep:(any "; ") string)
              (List.rev !audit);
            Ok ())));

  (* --- deferred constraint at commit ----------------------------------- *)
  let ctx = Db.begin_txn db in
  ignore
    (ok "over-limit insert accepted for now"
       (Db.insert db ctx ~relation:"orders"
          [| Value.int 50; Value.int 2; Value.int 5000 |]));
  (match Db.commit db ctx with
  | exception Error.Error e ->
    Fmt.pr "@.commit vetoed by deferred constraint: %s@." (Error.to_string e)
  | () -> Fmt.pr "@.commit UNEXPECTEDLY SUCCEEDED@.");
  ignore
    (ok "post"
       (Db.with_txn db (fun ctx ->
            Fmt.pr "orders after vetoed commit: %d@." (count ctx "orders");
            Ok ())));
  Db.close db;
  Fmt.pr "@.referential: done@."
