(* Optical-disk database publishing (a motivating application from the
   paper's introduction: "special facilities to support (read-only) optical
   disk database publishing applications").

   A publisher masters a parts catalog onto the write-once storage method,
   seals it, and "ships" it. A subscriber site mounts the published catalog
   read-only and combines it with its own live order data — including a
   foreign-gateway relation standing in for the publisher's price service —
   all through the one uniform relation interface.

   Run with: dune exec examples/publishing.exe *)

open Dmx_value
module Db = Dmx_db.Db
module Query = Dmx_query.Query
module Error = Dmx_core.Error

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %s" what (Error.to_string e))

let catalog_schema =
  Schema.make_exn
    [
      Schema.column ~nullable:false "part_no" Value.Tint;
      Schema.column "description" Value.Tstring;
      Schema.column "weight" Value.Tfloat;
    ]

let order_schema =
  Schema.make_exn
    [
      Schema.column ~nullable:false "order_id" Value.Tint;
      Schema.column ~nullable:false "part_no" Value.Tint;
      Schema.column "qty" Value.Tint;
    ]

let () =
  Db.register_defaults ();
  (* the publisher's live price service, reachable only by messages *)
  let srv = Dmx_smethod.Remote_server.create ~name:"publisher" in
  let db = Db.open_database () in

  (* ---- mastering: append, then seal ----------------------------------- *)
  ignore
    (ok "master"
       (Db.with_txn db (fun ctx ->
            let desc =
              ok "create catalog"
                (Db.create_relation db ctx ~name:"parts" ~schema:catalog_schema
                   ~storage_method:"readonly" ())
            in
            for p = 1 to 500 do
              ignore
                (ok "append"
                   (Db.insert db ctx ~relation:"parts"
                      [|
                        Value.int p;
                        String (Fmt.str "part-%04d" p);
                        Float (float_of_int (p mod 50) +. 0.25);
                      |]))
            done;
            (* an index on the published medium, built before sealing *)
            ok "catalog index"
              (Db.create_attachment db ctx ~relation:"parts"
                 ~attachment_type:"btree_index" ~name:"part_pk"
                 ~attrs:[ ("fields", "part_no"); ("unique", "true") ] ());
            Dmx_smethod.Readonly.seal ctx desc;
            Fmt.pr "mastered and sealed a %d-part catalog@."
              500;
            Ok ())));

  (* the medium refuses all modification *)
  ignore
    (ok "verify sealed"
       (Db.with_txn db (fun ctx ->
            (match
               Db.insert db ctx ~relation:"parts"
                 [| Value.int 999; String "bootleg"; Float 1.0 |]
             with
            | Error (Error.Read_only _) ->
              Fmt.pr "write to the published medium refused, as it must be@."
            | _ -> Fmt.pr "PUBLISHED MEDIUM ACCEPTED A WRITE?!@.");
            Ok ())));

  (* ---- subscriber site: live orders + remote prices ------------------- *)
  ignore
    (ok "subscriber"
       (Db.with_txn db (fun ctx ->
            ignore
              (ok "orders"
                 (Db.create_relation db ctx ~name:"orders" ~schema:order_schema ()));
            ok "order fk"
              (Db.create_attachment db ctx ~relation:"orders"
                 ~attachment_type:"refint" ~name:"order_part"
                 ~attrs:
                   [
                     ("fields", "part_no"); ("parent", "parts");
                     ("parent_fields", "part_no");
                   ]
                 ());
            ignore
              (ok "prices"
                 (Db.create_relation db ctx ~name:"prices"
                    ~schema:
                      (Schema.make_exn
                         [
                           Schema.column ~nullable:false "part_no" Value.Tint;
                           Schema.column "price" Value.Tfloat;
                         ])
                    ~storage_method:"foreign"
                    ~attrs:[ ("server", "publisher"); ("relation", "prices") ]
                    ()));
            for p = 1 to 500 do
              if p mod 5 = 0 then
                ignore
                  (ok "price"
                     (Db.insert db ctx ~relation:"prices"
                        [| Value.int p; Float (float_of_int p *. 9.99) |]))
            done;
            (* orders must reference published parts *)
            ignore
              (ok "good order"
                 (Db.insert db ctx ~relation:"orders"
                    [| Value.int 1; Value.int 120; Value.int 3 |]));
            (match
               Db.insert db ctx ~relation:"orders"
                 [| Value.int 2; Value.int 9999; Value.int 1 |]
             with
            | Error e ->
              Fmt.pr "order for an unpublished part rejected: %s@."
                (Error.to_string e)
            | Ok _ -> Fmt.pr "UNPUBLISHED PART ORDERED?!@.");
            (* join live orders with the published catalog *)
            let q =
              Query.join "orders" ~on:("parts", "part_no", "part_no")
                ~project:[ "order_id"; "description"; "qty" ]
            in
            Fmt.pr "order report (plan: %s):@."
              (ok "explain" (Db.explain db ctx q));
            List.iter
              (fun r -> Fmt.pr "  %a@." Record.pp r)
              (ok "report" (Db.query db ctx q ()));
            (* and ask the remote price service through the gateway *)
            let qp = Query.select ~where:"part_no = 120" "prices" in
            (match ok "price lookup" (Db.query db ctx qp ()) with
            | [ r ] -> Fmt.pr "remote price for part 120: %a@." Value.pp r.(1)
            | _ -> Fmt.pr "no remote price for part 120@.");
            Fmt.pr "messages exchanged with the publisher: %d@."
              (Dmx_smethod.Remote_server.message_count srv);
            Ok ())));
  Db.close db;
  Fmt.pr "@.publishing: done@."
