(* Writing new data management extensions.

   The paper's whole point: new storage methods and attachment types are
   alternative implementations of the generic abstractions, written by
   "sophisticated personnel at the factory" and linked into the system. This
   example authors two extensions from outside the built-in suite and runs
   them through the unchanged common machinery:

   - a RING storage method: a bounded main-memory relation that keeps the
     most recent [capacity] records (telemetry-style hot data);
   - a BLOOM attachment: maintains a Bloom filter over a field as a side
     effect of modifications ("attachments ... may have associated storage
     [to] maintain ... precomputed function values").

   Run with: dune exec examples/extension_author.exe *)

open Dmx_value
open Dmx_core
module Db = Dmx_db.Db
module Descriptor = Dmx_catalog.Descriptor
module Attrlist = Dmx_catalog.Attrlist

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %s" what (Error.to_string e))

(* ---------------------------------------------------------------------- *)
(* A new storage method: bounded ring of recent records.                   *)
(* ---------------------------------------------------------------------- *)

module Ring_method = struct
  module Imap = Map.Make (Int)

  type store = {
    mutable records : Record.t Imap.t;
    mutable next_seq : int;
    capacity : int;
  }

  let stores : (int, store) Hashtbl.t = Hashtbl.create 4

  let store_of rel_id capacity =
    match Hashtbl.find_opt stores rel_id with
    | Some s -> s
    | None ->
      let s = { records = Imap.empty; next_seq = 1; capacity } in
      Hashtbl.replace stores rel_id s;
      s

  let capacity_of desc =
    int_of_string (String.trim desc)

  let key_of seq = Record_key.rid ~page:0 ~slot:seq

  let seq_of = function
    | Record_key.Rid { page = 0; slot } -> Some slot
    | _ -> None

  module Impl = struct
    let name = "ring"
    let attr_specs = [ Attrlist.spec ~required:true "capacity" Attrlist.A_int ]

    let create _ctx ~rel_id _schema attrs =
      match Attrlist.get_int attrs "capacity" with
      | Ok (Some n) when n > 0 ->
        ignore (store_of rel_id n);
        Ok (string_of_int n)
      | _ -> Error (Error.Ddl_error "ring: capacity must be a positive integer")

    let destroy _ctx ~rel_id ~smethod_desc:_ = Hashtbl.remove stores rel_id

    let insert _ctx (desc : Descriptor.t) record =
      let s = store_of desc.rel_id (capacity_of desc.smethod_desc) in
      let seq = s.next_seq in
      s.next_seq <- seq + 1;
      s.records <- Imap.add seq record s.records;
      (* evict the oldest beyond capacity *)
      if Imap.cardinal s.records > s.capacity then begin
        let oldest, _ = Imap.min_binding s.records in
        s.records <- Imap.remove oldest s.records
      end;
      (* ring contents are transient: nothing is logged, like temporaries *)
      Ok (key_of seq)

    let fetch _ctx (desc : Descriptor.t) key ?fields () =
      match seq_of key with
      | None -> None
      | Some seq ->
        Option.map
          (fun r ->
            match fields with None -> r | Some fs -> Record.project r fs)
          (Imap.find_opt seq
             (store_of desc.rel_id (capacity_of desc.smethod_desc)).records)

    let delete _ctx (desc : Descriptor.t) key =
      let s = store_of desc.rel_id (capacity_of desc.smethod_desc) in
      match seq_of key with
      | Some seq -> begin
        match Imap.find_opt seq s.records with
        | Some r ->
          s.records <- Imap.remove seq s.records;
          Ok r
        | None -> Error (Error.Key_not_found (Record_key.to_string key))
      end
      | None -> Error (Error.Key_not_found (Record_key.to_string key))

    let update _ctx (desc : Descriptor.t) key record =
      let s = store_of desc.rel_id (capacity_of desc.smethod_desc) in
      match seq_of key with
      | Some seq when Imap.mem seq s.records ->
        s.records <- Imap.add seq record s.records;
        Ok key
      | _ -> Error (Error.Key_not_found (Record_key.to_string key))

    let key_fields _ = None

    let record_count _ctx (desc : Descriptor.t) =
      Imap.cardinal
        (store_of desc.rel_id (capacity_of desc.smethod_desc)).records

    let scan _ctx (desc : Descriptor.t) ?lo:_ ?hi:_ ?filter () =
      let s = store_of desc.rel_id (capacity_of desc.smethod_desc) in
      let pos = ref 0 in
      Scan_help.filtered ?filter
        ~next:(fun () ->
          match Imap.find_first_opt (fun seq -> seq > !pos) s.records with
          | None -> None
          | Some (seq, r) ->
            pos := seq;
            Some (key_of seq, r))
        ~close:(fun () -> ())
        ~capture:(fun () ->
          let saved = !pos in
          fun () -> pos := saved)
        ()

    let estimate_scan ctx (desc : Descriptor.t) ~eligible =
      let rows = float_of_int (record_count ctx desc) in
      {
        Cost.cost = Cost.make ~io:0. ~cpu:rows;
        est_rows = rows;
        matched = eligible;
        residual = [];
        ordered_by = None;
      }

    let undo _ctx ~rel_id:_ ~data:_ = ()
  end

  let register () = Registry.register_storage_method (module Impl)
end

(* ---------------------------------------------------------------------- *)
(* A new attachment type: Bloom filter over one field.                     *)
(* ---------------------------------------------------------------------- *)

module Bloom_attachment = struct
  (* Filter bits live in process memory keyed by (rel, instance); the
     descriptor records field + size. A Bloom filter is conservative: undo
     and delete need not clear bits. *)
  let filters : (int * int, Bytes.t) Hashtbl.t = Hashtbl.create 4

  type inst = { field : int; bits : int }

  let enc_inst e i =
    Codec.Enc.varint e i.field;
    Codec.Enc.varint e i.bits

  let dec_inst d =
    let field = Codec.Dec.varint d in
    let bits = Codec.Dec.varint d in
    { field; bits }

  let insts_of slot = Dmx_attach.Attach_util.dec_instances dec_inst slot
  let slot_of insts = Dmx_attach.Attach_util.enc_instances enc_inst insts

  let filter_of rel_id no bits =
    match Hashtbl.find_opt filters (rel_id, no) with
    | Some b -> b
    | None ->
      let b = Bytes.make ((bits + 7) / 8) '\000' in
      Hashtbl.replace filters (rel_id, no) b;
      b

  let set_bit b i =
    let byte = i / 8 and bit = i mod 8 in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl bit)))

  let get_bit b i =
    let byte = i / 8 and bit = i mod 8 in
    Char.code (Bytes.get b byte) land (1 lsl bit) <> 0

  let hashes v bits =
    let h1 = Value.hash v land max_int in
    let h2 = Hashtbl.hash (Value.to_string v) land max_int in
    [ h1 mod bits; (h1 + h2) mod bits; (h1 + (3 * h2)) mod bits ]

  let add rel_id no inst v =
    let b = filter_of rel_id no inst.bits in
    List.iter (set_bit b) (hashes v inst.bits)

  let reg_id = ref None
  let id () = Option.get !reg_id

  module Impl = struct
    let name = "bloom"

    let attr_specs =
      [
        Attrlist.spec ~required:true "field" Attrlist.A_string;
        Attrlist.spec "bits" Attrlist.A_int;
      ]

    let create_instance ctx (desc : Descriptor.t) ~instance_name attrs =
      match Attrlist.validate attr_specs attrs with
      | Error e -> Error (Error.Ddl_error e)
      | Ok () -> begin
        match
          Dmx_attach.Attach_util.parse_fields desc.schema
            (Option.get (Attrlist.find attrs "field"))
        with
        | Error e -> Error (Error.Ddl_error e)
        | Ok fields when Array.length fields <> 1 ->
          Error (Error.Ddl_error "bloom: exactly one field")
        | Ok fields ->
          let bits =
            match Attrlist.get_int attrs "bits" with
            | Ok (Some n) when n > 64 -> n
            | _ -> 4096
          in
          let insts =
            match Descriptor.attachment_desc desc (id ()) with
            | None -> []
            | Some slot -> insts_of slot
          in
          let no = Dmx_attach.Attach_util.next_instance_no insts in
          let inst = { field = fields.(0); bits } in
          (* build from existing records *)
          Dmx_attach.Attach_util.scan_relation ctx desc (fun _ record ->
              if record.(inst.field) <> Value.Null then
                add desc.rel_id no inst record.(inst.field));
          Ok (slot_of (insts @ [ (no, instance_name, inst) ]))
      end

    let drop_instance _ctx (desc : Descriptor.t) ~instance_name =
      match Descriptor.attachment_desc desc (id ()) with
      | None -> Error (Error.No_such_attachment instance_name)
      | Some slot ->
        let remaining =
          Dmx_attach.Attach_util.remove_by_name (insts_of slot) instance_name
        in
        Ok (if remaining = [] then None else Some (slot_of remaining))

    let on_insert _ctx (desc : Descriptor.t) ~slot _key record =
      List.iter
        (fun (no, _, inst) ->
          if record.(inst.field) <> Value.Null then
            add desc.rel_id no inst record.(inst.field))
        (insts_of slot);
      Ok ()

    let on_update _ctx (desc : Descriptor.t) ~slot ~old_key:_ ~new_key:_
        ~old_record:_ ~new_record =
      List.iter
        (fun (no, _, inst) ->
          if new_record.(inst.field) <> Value.Null then
            add desc.rel_id no inst new_record.(inst.field))
        (insts_of slot);
      Ok ()

    (* deletions leave bits set: the filter stays a conservative superset *)
    let on_delete _ctx _desc ~slot:_ _key _record = Ok ()
    let lookup _ctx _desc ~slot:_ ~instance:_ ~key:_ = []
    let scan _ctx _desc ~slot:_ ~instance:_ ?lo:_ ?hi:_ () = None
    let estimate _ctx _desc ~slot:_ ~eligible:_ = []
    let undo _ctx ~rel_id:_ ~data:_ = ()
  end

  let register () =
    let i = Registry.register_attachment (module Impl) in
    reg_id := Some i;
    i

  let maybe_contains (desc : Descriptor.t) ~name v =
    match Descriptor.attachment_desc desc (id ()) with
    | None -> true
    | Some slot -> begin
      match Dmx_attach.Attach_util.find_by_name (insts_of slot) name with
      | None -> true
      | Some (no, inst) ->
        let b = filter_of desc.rel_id no inst.bits in
        List.for_all (get_bit b) (hashes v inst.bits)
    end
end

(* ---------------------------------------------------------------------- *)

let () =
  (* factory time: built-ins first (stable ids), then our extensions *)
  Db.register_defaults ();
  let ring_id = Ring_method.register () in
  let bloom_id = Bloom_attachment.register () in
  Fmt.pr "registered new storage method %S as id %d@." "ring" ring_id;
  Fmt.pr "registered new attachment type %S as id %d@.@." "bloom" bloom_id;

  let db = Db.open_database () in
  let telemetry =
    Schema.make_exn
      [
        Schema.column ~nullable:false "seq" Value.Tint;
        Schema.column "sensor" Value.Tstring;
        Schema.column "reading" Value.Tfloat;
      ]
  in

  ignore
    (ok "ring demo"
       (Db.with_txn db (fun ctx ->
            ignore
              (ok "create ring"
                 (Db.create_relation db ctx ~name:"telemetry" ~schema:telemetry
                    ~storage_method:"ring" ~attrs:[ ("capacity", "5") ] ()));
            for i = 1 to 12 do
              ignore
                (ok "ins"
                   (Db.insert db ctx ~relation:"telemetry"
                      [|
                        Value.int i;
                        String (Fmt.str "s%d" (i mod 3));
                        Float (float_of_int i *. 1.5);
                      |]))
            done;
            let rows =
              ok "q" (Db.query db ctx (Dmx_query.Query.select "telemetry") ())
            in
            Fmt.pr "ring relation after 12 inserts (capacity 5): %d records@."
              (List.length rows);
            List.iter (fun r -> Fmt.pr "  %a@." Record.pp r) rows;
            Ok ())));

  let users =
    Schema.make_exn
      [
        Schema.column ~nullable:false "id" Value.Tint;
        Schema.column "email" Value.Tstring;
      ]
  in
  ignore
    (ok "bloom demo"
       (Db.with_txn db (fun ctx ->
            ignore
              (ok "create users"
                 (Db.create_relation db ctx ~name:"users" ~schema:users ()));
            ok "bloom"
              (Db.create_attachment db ctx ~relation:"users"
                 ~attachment_type:"bloom" ~name:"email_bloom"
                 ~attrs:[ ("field", "email") ] ());
            for i = 1 to 200 do
              ignore
                (ok "ins"
                   (Db.insert db ctx ~relation:"users"
                      [| Value.int i; String (Fmt.str "user%d@example.com" i) |]))
            done;
            let desc = ok "rel" (Db.relation db ctx "users") in
            let probe v =
              Bloom_attachment.maybe_contains desc ~name:"email_bloom"
                (String v)
            in
            Fmt.pr "@.bloom(user7@example.com)    = %b (present)@."
              (probe "user7@example.com");
            Fmt.pr "bloom(user200@example.com)  = %b (present)@."
              (probe "user200@example.com");
            let false_hits = ref 0 in
            for i = 1000 to 1999 do
              if probe (Fmt.str "ghost%d@example.com" i) then incr false_hits
            done;
            Fmt.pr "bloom false positives on 1000 absent keys: %d@."
              !false_hits;
            Ok ())));
  Db.close db;
  Fmt.pr "@.extension_author: done@."
