(* Quickstart: builds exactly the configuration of Figure 1 of the paper —
   an EMPLOYEE relation using the heap storage method, with instances of
   B-tree index and intra-record consistency (check) attachments — then
   exercises direct-by-key access, key-sequential access and the planner.

   Run with: dune exec examples/quickstart.exe *)

open Dmx_value
module Db = Dmx_db.Db
module Query = Dmx_query.Query
module Error = Dmx_core.Error

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %s" what (Error.to_string e))

let () =
  (* Extensions are bound "at the factory": before the database opens. *)
  Db.register_defaults ();
  let db = Db.open_database () in

  let schema =
    Schema.make_exn
      [
        Schema.column ~nullable:false "id" Value.Tint;
        Schema.column "name" Value.Tstring;
        Schema.column "dept" Value.Tstring;
        Schema.column "salary" Value.Tint;
      ]
  in

  (* --- Figure 1: storage method + attachment instances ----------------- *)
  ignore
    (ok "setup"
       (Db.with_txn db (fun ctx ->
            let desc =
              ok "create relation"
                (Db.create_relation db ctx ~name:"employee" ~schema
                   ~storage_method:"heap" ())
            in
            ignore desc;
            (* two B-tree index instances, as in the figure *)
            ok "index on id"
              (Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"btree_index" ~name:"emp_id"
                 ~attrs:[ ("fields", "id"); ("unique", "true") ] ());
            ok "index on dept"
              (Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"btree_index" ~name:"emp_dept"
                 ~attrs:[ ("fields", "dept") ] ());
            (* an intra-record consistency constraint *)
            ok "salary check"
              (Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"check" ~name:"salary_positive"
                 ~attrs:[ ("predicate", "salary > 0") ] ());
            Ok ())));

  (* --- populate -------------------------------------------------------- *)
  ignore
    (ok "populate"
       (Db.with_txn db (fun ctx ->
            List.iter
              (fun (i, n, d, s) ->
                ignore
                  (ok "insert"
                     (Db.insert db ctx ~relation:"employee"
                        [| Value.int i; String n; String d; Value.int s |])))
              [
                (1, "alice", "eng", 120);
                (2, "bob", "eng", 100);
                (3, "carol", "ops", 90);
                (4, "dave", "hr", 80);
                (5, "erin", "eng", 110);
              ];
            Ok ())));

  (* --- the composite relation descriptor ------------------------------- *)
  ignore
    (ok "inspect"
       (Db.with_txn db (fun ctx ->
            let desc = ok "find" (Db.relation db ctx "employee") in
            Fmt.pr "=== Figure 1 configuration ===@.%a@.@."
              Dmx_catalog.Descriptor.pp desc;
            Fmt.pr "registered storage methods: %a@."
              Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") int string))
              (Dmx_core.Registry.storage_methods ());
            Fmt.pr "registered attachment types: %a@.@."
              Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") int string))
              (Dmx_core.Registry.attachments ());
            Ok ())));

  (* --- the constraint attachment vetoes a bad modification ------------- *)
  ignore
    (ok "veto demo"
       (Db.with_txn db (fun ctx ->
            (match
               Db.insert db ctx ~relation:"employee"
                 [| Value.int 9; String "mallory"; String "eng"; Value.int (-5) |]
             with
            | Error e -> Fmt.pr "veto demo: %s@." (Error.to_string e)
            | Ok _ -> Fmt.pr "veto demo: UNEXPECTEDLY ACCEPTED@.");
            (match
               Db.insert db ctx ~relation:"employee"
                 [| Value.int 1; String "dup"; String "eng"; Value.int 10 |]
             with
            | Error e -> Fmt.pr "unique demo: %s@.@." (Error.to_string e)
            | Ok _ -> Fmt.pr "unique demo: UNEXPECTEDLY ACCEPTED@.");
            Ok ())));

  (* --- queries through the bound-plan machinery ------------------------ *)
  ignore
    (ok "queries"
       (Db.with_txn db (fun ctx ->
            let show q =
              let plan = ok "explain" (Db.explain db ctx q) in
              let rows = ok "query" (Db.query db ctx q ()) in
              Fmt.pr "%s@.  plan: %s@.  rows:@." (Query.key q) plan;
              List.iter (fun r -> Fmt.pr "    %a@." Record.pp r) rows
            in
            show (Query.select ~where:"dept = 'eng'" "employee");
            show
              (Query.select ~where:"salary >= 100"
                 ~project:[ "name"; "salary" ] "employee");
            show (Query.select ~where:"id = 3" "employee");
            Ok ())));
  Db.close db;
  Fmt.pr "@.quickstart: done@."
