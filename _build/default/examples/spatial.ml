(* Spatial database application (the paper's opening motivation: "spatial
   database applications can make use of an R-tree access path [GUTTMAN 84]
   to efficiently compute certain spatial predicates").

   A land-parcel register is stored as rectangles; the R-tree attachment
   recognises the ENCLOSES predicate and the planner picks it over a
   sequential scan, which we demonstrate by comparing simulated I/O.

   Run with: dune exec examples/spatial.exe *)

open Dmx_value
module Db = Dmx_db.Db
module Query = Dmx_query.Query
module Error = Dmx_core.Error
module Io_stats = Dmx_page.Io_stats

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %s" what (Error.to_string e))

let () =
  Db.register_defaults ();
  let db = Db.open_database () in
  let schema =
    Schema.make_exn
      [
        Schema.column ~nullable:false "parcel_id" Value.Tint;
        Schema.column "owner" Value.Tstring;
        Schema.column ~nullable:false "xlo" Value.Tfloat;
        Schema.column ~nullable:false "ylo" Value.Tfloat;
        Schema.column ~nullable:false "xhi" Value.Tfloat;
        Schema.column ~nullable:false "yhi" Value.Tfloat;
      ]
  in
  let n_side = 60 in
  ignore
    (ok "setup"
       (Db.with_txn db (fun ctx ->
            ignore
              (ok "create"
                 (Db.create_relation db ctx ~name:"parcel" ~schema ()));
            ok "rtree"
              (Db.create_attachment db ctx ~relation:"parcel"
                 ~attachment_type:"rtree_index" ~name:"parcel_rt"
                 ~attrs:[ ("rect", "xlo,ylo,xhi,yhi") ] ());
            (* a n x n grid of parcels, 8x8 units with 2-unit gaps *)
            for i = 0 to (n_side * n_side) - 1 do
              let x = float_of_int (i mod n_side) *. 10. in
              let y = float_of_int (i / n_side) *. 10. in
              ignore
                (ok "insert"
                   (Db.insert db ctx ~relation:"parcel"
                      [|
                        Value.int i;
                        String (Fmt.str "owner%d" (i mod 97));
                        Float x; Float y; Float (x +. 8.); Float (y +. 8.);
                      |]))
            done;
            Ok ())));

  let q =
    Query.select
      ~where:"encloses(100.0, 100.0, 160.0, 160.0, xlo, ylo, xhi, yhi)"
      ~project:[ "parcel_id"; "owner" ] "parcel"
  in
  ignore
    (ok "query"
       (Db.with_txn db (fun ctx ->
            Fmt.pr "=== spatial query ===@.%s@." (Query.key q);
            Fmt.pr "plan: %s@." (ok "explain" (Db.explain db ctx q));
            let io = Dmx_core.Services.io_stats db.Db.services in
            let before = Io_stats.copy io in
            let rows = ok "run" (Db.query db ctx q ()) in
            let spatial_io = Io_stats.diff ~after:(Io_stats.copy io) ~before in
            Fmt.pr "parcels enclosed by the window: %d@." (List.length rows);
            Fmt.pr "I/O via R-tree: %a@." Io_stats.pp spatial_io;
            (* same answer through a forced sequential scan: rephrase the
               predicate so the R-tree cannot recognise it *)
            let q_scan =
              Query.select
                ~where:
                  "xlo >= 100.0 AND ylo >= 100.0 AND xhi <= 160.0 AND yhi <= 160.0"
                ~project:[ "parcel_id"; "owner" ] "parcel"
            in
            Fmt.pr "scan plan: %s@." (ok "explain2" (Db.explain db ctx q_scan));
            let before = Io_stats.copy io in
            let rows2 = ok "run2" (Db.query db ctx q_scan ()) in
            let scan_io = Io_stats.diff ~after:(Io_stats.copy io) ~before in
            Fmt.pr "I/O via scan:   %a@." Io_stats.pp scan_io;
            assert (List.length rows = List.length rows2);
            Fmt.pr "both plans agree on %d parcels@." (List.length rows);
            Ok ())));
  Db.close db;
  Fmt.pr "@.spatial: done@."
