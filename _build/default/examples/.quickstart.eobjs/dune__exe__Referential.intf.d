examples/referential.mli:
