examples/recovery_demo.ml: Array Dmx_core Dmx_db Dmx_expr Dmx_page Dmx_query Dmx_value Dmx_wal Filename Fmt List Record Schema Sys Unix Value
