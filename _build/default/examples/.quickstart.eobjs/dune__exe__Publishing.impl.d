examples/publishing.ml: Array Dmx_core Dmx_db Dmx_query Dmx_smethod Dmx_value Fmt List Record Schema Value
