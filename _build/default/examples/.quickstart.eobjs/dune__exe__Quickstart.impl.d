examples/quickstart.ml: Dmx_catalog Dmx_core Dmx_db Dmx_query Dmx_value Fmt List Record Schema Value
