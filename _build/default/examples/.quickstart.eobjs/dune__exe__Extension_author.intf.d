examples/extension_author.mli:
