examples/publishing.mli:
