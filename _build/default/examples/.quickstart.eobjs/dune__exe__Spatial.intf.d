examples/spatial.mli:
