examples/spatial.ml: Dmx_core Dmx_db Dmx_page Dmx_query Dmx_value Fmt List Schema Value
