examples/quickstart.mli:
