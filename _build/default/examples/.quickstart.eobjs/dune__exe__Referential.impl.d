examples/referential.ml: Dmx_attach Dmx_core Dmx_db Dmx_expr Dmx_query Dmx_value Fmt List Schema Value
