(* Crash and restart recovery: the common log drives extension undo.

   Phase 1 commits some work, leaves a transaction in flight and crashes
   (volatile state is dropped, nothing is shut down cleanly). Phase 2 reopens
   the same directory: restart recovery classifies winners and losers from
   the log and drives the storage-method and attachment undo entry points for
   the losers.

   Run with: dune exec examples/recovery_demo.exe *)

open Dmx_value
module Db = Dmx_db.Db
module Query = Dmx_query.Query
module Services = Dmx_core.Services
module Error = Dmx_core.Error

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %s" what (Error.to_string e))

let dir = Filename.concat (Filename.get_temp_dir_name ()) "dmx_recovery_demo"

let clean () =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let account_schema =
  Schema.make_exn
    [
      Schema.column ~nullable:false "acct" Value.Tint;
      Schema.column "owner" Value.Tstring;
      Schema.column ~nullable:false "balance" Value.Tint;
    ]

let () =
  clean ();
  Db.register_defaults ();

  (* ---- phase 1: committed work + an in-flight loser, then crash ------- *)
  let db = Db.open_database ~dir () in
  ignore
    (ok "committed work"
       (Db.with_txn db (fun ctx ->
            ignore
              (ok "create"
                 (Db.create_relation db ctx ~name:"account"
                    ~schema:account_schema ()));
            ok "index"
              (Db.create_attachment db ctx ~relation:"account"
                 ~attachment_type:"btree_index" ~name:"acct_pk"
                 ~attrs:[ ("fields", "acct"); ("unique", "true") ] ());
            List.iter
              (fun (a, o, b) ->
                ignore
                  (ok "ins"
                     (Db.insert db ctx ~relation:"account"
                        [| Value.int a; String o; Value.int b |])))
              [ (1, "alice", 100); (2, "bob", 200); (3, "carol", 300) ];
            Ok ())));
  Fmt.pr "phase 1: committed 3 accounts@.";

  (* in-flight transaction: transfers money but never commits *)
  let ctx = Db.begin_txn db in
  let desc = ok "rel" (Db.relation db ctx "account") in
  let fetch_by_acct a =
    let scan =
      ok "scan"
        (Dmx_core.Relation.scan ctx desc
           ~filter:(Dmx_expr.Parse.parse_exn account_schema
                      (Fmt.str "acct = %d" a))
           ())
    in
    match scan.Dmx_core.Intf.rs_next () with
    | Some (key, record) ->
      scan.rs_close ();
      (key, record)
    | None -> failwith "account missing"
  in
  let k1, r1 = fetch_by_acct 1 in
  let k2, r2 = fetch_by_acct 2 in
  ignore
    (ok "debit"
       (Db.update db ctx ~relation:"account"
          k1 [| r1.(0); r1.(1); Value.int 0 |]));
  ignore
    (ok "credit"
       (Db.update db ctx ~relation:"account"
          k2 [| r2.(0); r2.(1); Value.int 300 |]));
  ignore
    (ok "new acct"
       (Db.insert db ctx ~relation:"account"
          [| Value.int 4; String "mallory"; Value.int 999 |]));
  (* harden log and pages so the crash leaves loser effects on disk *)
  Dmx_wal.Wal.flush db.Db.services.Services.wal;
  Dmx_page.Buffer_pool.flush_all db.Db.services.Services.bp;
  Fmt.pr "phase 1: in-flight transfer written to disk, now crashing...@.";
  Services.simulate_crash db.Db.services;

  (* ---- phase 2: restart ------------------------------------------------ *)
  let db = Db.open_database ~dir () in
  (match db.Db.services.Services.last_recovery with
  | Some a ->
    Fmt.pr "phase 2: restart recovery: %a@." Dmx_wal.Recovery.pp a
  | None -> Fmt.pr "phase 2: no recovery analysis?!@.");
  ignore
    (ok "verify"
       (Db.with_txn db (fun ctx ->
            let rows =
              ok "q" (Db.query db ctx (Query.select "account") ())
            in
            Fmt.pr "accounts after recovery:@.";
            List.iter (fun r -> Fmt.pr "  %a@." Record.pp r) rows;
            assert (List.length rows = 3);
            (* balances are back to their committed values *)
            List.iter
              (fun r ->
                match Value.to_int r.(0), Value.to_int r.(2) with
                | Some 1L, b -> assert (b = Some 100L)
                | Some 2L, b -> assert (b = Some 200L)
                | Some 3L, b -> assert (b = Some 300L)
                | _ -> assert false)
              rows;
            (* the unique index is consistent with the relation *)
            let q = Query.select ~where:"acct = 4" "account" in
            assert (ok "q4" (Db.query db ctx q ()) = []);
            Ok ())));
  Db.close db;
  clean ();
  Fmt.pr "@.recovery_demo: done — losers undone, winners preserved@."
