open Dmx_catalog

let max_storage_methods = 64

let smethods : (module Intf.STORAGE_METHOD) option array =
  Array.make max_storage_methods None

let attaches : (module Intf.ATTACHMENT) option array =
  Array.make Descriptor.max_attachment_types None

let sm_count = ref 0
let at_count = ref 0
let frozen = ref false

let unregistered _ = failwith "Registry: unregistered extension id"

(* Per-operation procedure vectors; entries installed at registration. *)
module Vec = struct
  let sm_insert = Array.make max_storage_methods (fun _ _ _ -> unregistered ())
  let sm_update = Array.make max_storage_methods (fun _ _ _ _ -> unregistered ())
  let sm_delete = Array.make max_storage_methods (fun _ _ _ -> unregistered ())

  let at_on_insert =
    Array.make Descriptor.max_attachment_types (fun _ _ ~slot:_ _ _ ->
        unregistered ())

  let at_on_update =
    Array.make Descriptor.max_attachment_types
      (fun _ _ ~slot:_ ~old_key:_ ~new_key:_ ~old_record:_ ~new_record:_ ->
        unregistered ())

  let at_on_delete =
    Array.make Descriptor.max_attachment_types (fun _ _ ~slot:_ _ _ ->
        unregistered ())
end

let check_not_frozen what =
  if !frozen then
    invalid_arg
      (Fmt.str
         "Registry: cannot register %s after the database has opened — \
          extensions are bound at the factory"
         what)

let register_storage_method (module M : Intf.STORAGE_METHOD) =
  check_not_frozen ("storage method " ^ M.name);
  if !sm_count >= max_storage_methods then
    invalid_arg "Registry: storage-method vector full";
  Array.iteri
    (fun _ slot ->
      match slot with
      | Some (module O : Intf.STORAGE_METHOD) when O.name = M.name ->
        invalid_arg (Fmt.str "Registry: storage method %S already registered" M.name)
      | _ -> ())
    smethods;
  let id = !sm_count in
  incr sm_count;
  smethods.(id) <- Some (module M);
  Vec.sm_insert.(id) <- M.insert;
  Vec.sm_update.(id) <- M.update;
  Vec.sm_delete.(id) <- M.delete;
  id

let register_attachment (module M : Intf.ATTACHMENT) =
  check_not_frozen ("attachment " ^ M.name);
  if !at_count >= Descriptor.max_attachment_types then
    invalid_arg "Registry: attachment vector full";
  Array.iteri
    (fun _ slot ->
      match slot with
      | Some (module O : Intf.ATTACHMENT) when O.name = M.name ->
        invalid_arg (Fmt.str "Registry: attachment %S already registered" M.name)
      | _ -> ())
    attaches;
  let id = !at_count in
  incr at_count;
  attaches.(id) <- Some (module M);
  Vec.at_on_insert.(id) <- M.on_insert;
  Vec.at_on_update.(id) <- M.on_update;
  Vec.at_on_delete.(id) <- M.on_delete;
  id

let freeze () = frozen := true
let is_frozen () = !frozen

let reset_for_testing () =
  frozen := false;
  sm_count := 0;
  at_count := 0;
  Array.fill smethods 0 (Array.length smethods) None;
  Array.fill attaches 0 (Array.length attaches) None;
  Array.fill Vec.sm_insert 0 (Array.length Vec.sm_insert) (fun _ _ _ ->
      unregistered ());
  Array.fill Vec.sm_update 0 (Array.length Vec.sm_update) (fun _ _ _ _ ->
      unregistered ());
  Array.fill Vec.sm_delete 0 (Array.length Vec.sm_delete) (fun _ _ _ ->
      unregistered ());
  Array.fill Vec.at_on_insert 0
    (Array.length Vec.at_on_insert)
    (fun _ _ ~slot:_ _ _ -> unregistered ());
  Array.fill Vec.at_on_update 0
    (Array.length Vec.at_on_update)
    (fun _ _ ~slot:_ ~old_key:_ ~new_key:_ ~old_record:_ ~new_record:_ ->
      unregistered ());
  Array.fill Vec.at_on_delete 0
    (Array.length Vec.at_on_delete)
    (fun _ _ ~slot:_ _ _ -> unregistered ())

let storage_method id =
  match
    if id >= 0 && id < max_storage_methods then smethods.(id) else None
  with
  | Some m -> m
  | None -> invalid_arg (Fmt.str "Registry: no storage method with id %d" id)

let attachment id =
  match
    if id >= 0 && id < Descriptor.max_attachment_types then attaches.(id)
    else None
  with
  | Some m -> m
  | None -> invalid_arg (Fmt.str "Registry: no attachment with id %d" id)

let find_id arr count name_of name =
  let rec loop i =
    if i >= count then None
    else
      match arr.(i) with
      | Some m when String.lowercase_ascii (name_of m) = String.lowercase_ascii name ->
        Some i
      | _ -> loop (i + 1)
  in
  loop 0

let storage_method_id name =
  find_id smethods !sm_count
    (fun (module M : Intf.STORAGE_METHOD) -> M.name)
    name

let attachment_id name =
  find_id attaches !at_count (fun (module M : Intf.ATTACHMENT) -> M.name) name

let storage_method_name id =
  let (module M : Intf.STORAGE_METHOD) = storage_method id in
  M.name

let attachment_name id =
  let (module M : Intf.ATTACHMENT) = attachment id in
  M.name

let storage_methods () =
  List.init !sm_count (fun id -> (id, storage_method_name id))

let attachments () = List.init !at_count (fun id -> (id, attachment_name id))
