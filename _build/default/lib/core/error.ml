type t =
  | Veto of { attachment : string; reason : string }
  | Constraint_violation of string
  | Duplicate_key of string
  | Key_not_found of string
  | Lock_conflict of { txid : int; holders : int list }
  | Deadlock_victim of { txid : int }
  | Read_only of string
  | No_such_relation of string
  | No_such_attachment of string
  | Schema_error of string
  | Ddl_error of string
  | Authorization_denied of string
  | Internal of string

exception Error of t

let veto ~attachment reason = Veto { attachment; reason }

let to_string = function
  | Veto { attachment; reason } ->
    Fmt.str "modification vetoed by %s: %s" attachment reason
  | Constraint_violation s -> Fmt.str "constraint violation: %s" s
  | Duplicate_key s -> Fmt.str "duplicate key: %s" s
  | Key_not_found s -> Fmt.str "key not found: %s" s
  | Lock_conflict { txid; holders } ->
    Fmt.str "lock conflict: tx%d blocked by [%a]" txid
      Fmt.(list ~sep:(any ",") int)
      holders
  | Deadlock_victim { txid } -> Fmt.str "tx%d chosen as deadlock victim" txid
  | Read_only s -> Fmt.str "read-only: %s" s
  | No_such_relation s -> Fmt.str "no such relation: %s" s
  | No_such_attachment s -> Fmt.str "no such attachment: %s" s
  | Schema_error s -> Fmt.str "schema error: %s" s
  | Ddl_error s -> Fmt.str "DDL error: %s" s
  | Authorization_denied s -> Fmt.str "authorization denied: %s" s
  | Internal s -> Fmt.str "internal error: %s" s

let pp ppf t = Fmt.string ppf (to_string t)
let raise_err t = raise (Error t)
let fail fmt = Fmt.kstr (fun s -> Stdlib.Error (Internal s)) fmt
