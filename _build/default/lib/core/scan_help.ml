let filtered ?filter ~next ~close ~capture () =
  let rs_next () =
    let rec loop () =
      match next () with
      | None -> None
      | Some (_key, record) as hit -> begin
        match filter with
        | None -> hit
        | Some pred ->
          if Dmx_expr.Eval.test record pred then hit else loop ()
      end
    in
    loop ()
  in
  { Intf.rs_next; rs_close = close; rs_capture = capture }

let key_scan_of ~next ~close ~capture () =
  { Intf.ks_next = next; ks_close = close; ks_capture = capture }

let record_scan_to_list (s : Intf.record_scan) =
  let rec loop acc =
    match s.rs_next () with
    | None ->
      s.rs_close ();
      List.rev acc
    | Some hit -> loop (hit :: acc)
  in
  loop []

let key_scan_to_list (s : Intf.key_scan) =
  let rec loop acc =
    match s.ks_next () with
    | None ->
      s.ks_close ();
      List.rev acc
    | Some hit -> loop (hit :: acc)
  in
  loop []
