(** Access-cost estimates.

    "Given a list of 'eligible' predicates supplied by the query planner, the
    storage method or access attachment can determine the 'relevance' of the
    predicates to the access path instance and then estimate the I/O and CPU
    costs to return the record fields or keys that satisfy the predicates"
    (paper p. 223). *)

type t = { io : float; cpu : float }

val zero : t
val make : io:float -> cpu:float -> t
val add : t -> t -> t
val scale : float -> t -> t

val total : t -> float
(** Scalar used for plan comparison; one I/O is worth {!io_weight} CPU
    units. *)

val io_weight : float
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** What an access reported back to the planner. *)
type estimate = {
  cost : t;
  est_rows : float;  (** qualifying rows the access will deliver *)
  matched : Dmx_expr.Expr.t list;
      (** eligible conjuncts the access applies itself *)
  residual : Dmx_expr.Expr.t list;
      (** conjuncts the caller must still evaluate *)
  ordered_by : int array option;
      (** record fields ordering the returned stream, if any *)
}

val pp_estimate : Format.formatter -> estimate -> unit
