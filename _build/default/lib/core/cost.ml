type t = { io : float; cpu : float }

let zero = { io = 0.; cpu = 0. }
let make ~io ~cpu = { io; cpu }
let add a b = { io = a.io +. b.io; cpu = a.cpu +. b.cpu }
let scale k { io; cpu } = { io = k *. io; cpu = k *. cpu }

let io_weight = 1000.

let total { io; cpu } = (io *. io_weight) +. cpu
let compare a b = Float.compare (total a) (total b)
let pp ppf t = Fmt.pf ppf "io=%.1f cpu=%.0f (total %.0f)" t.io t.cpu (total t)

type estimate = {
  cost : t;
  est_rows : float;
  matched : Dmx_expr.Expr.t list;
  residual : Dmx_expr.Expr.t list;
  ordered_by : int array option;
}

let pp_estimate ppf e =
  Fmt.pf ppf "cost(%a) rows=%.1f matched=%d residual=%d" pp e.cost e.est_rows
    (List.length e.matched) (List.length e.residual)
