(** Helpers extensions use to build scans.

    [filtered] wraps a raw producer with the common predicate-evaluation
    service so that non-qualifying records are skipped inside the extension,
    while the field values are still in the buffer pool (paper p. 223). *)

open Dmx_value

val filtered :
  ?filter:Dmx_expr.Expr.t ->
  next:(unit -> (Record_key.t * Record.t) option) ->
  close:(unit -> unit) ->
  capture:(unit -> unit -> unit) ->
  unit ->
  Intf.record_scan

val key_scan_of :
  next:(unit -> Record_key.t option) ->
  close:(unit -> unit) ->
  capture:(unit -> unit -> unit) ->
  unit ->
  Intf.key_scan

val record_scan_to_list : Intf.record_scan -> (Record_key.t * Record.t) list
(** Drain and close — convenience for tests and internal bulk reads. *)

val key_scan_to_list : Intf.key_scan -> Record_key.t list
