lib/core/cost.mli: Dmx_expr Format
