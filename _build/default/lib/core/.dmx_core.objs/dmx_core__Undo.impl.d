lib/core/undo.ml: Ctx Dmx_catalog Dmx_wal Intf Log_record Registry
