lib/core/ctx.mli: Dmx_catalog Dmx_lock Dmx_page Dmx_txn Dmx_wal Error Log_record
