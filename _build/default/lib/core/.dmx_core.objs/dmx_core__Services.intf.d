lib/core/services.mli: Ctx Dmx_catalog Dmx_lock Dmx_page Dmx_txn Dmx_wal Error
