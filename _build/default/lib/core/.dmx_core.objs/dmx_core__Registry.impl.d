lib/core/registry.ml: Array Descriptor Dmx_catalog Fmt Intf List String
