lib/core/services.ml: Buffer_pool Ctx Disk Dmx_catalog Dmx_lock Dmx_page Dmx_txn Dmx_wal Filename List Recovery Registry Sys Undo Unix Wal
