lib/core/relation.ml: Array Bytes Ctx Descriptor Dmx_catalog Dmx_lock Dmx_txn Dmx_value Error Fmt Intf List Record_key Registry Result Schema
