lib/core/cost.ml: Dmx_expr Float Fmt List
