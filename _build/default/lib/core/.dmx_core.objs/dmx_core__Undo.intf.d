lib/core/undo.mli: Dmx_catalog Dmx_page Dmx_txn Dmx_wal
