lib/core/scan_help.mli: Dmx_expr Dmx_value Intf Record Record_key
