lib/core/relation.mli: Ctx Descriptor Dmx_catalog Dmx_expr Dmx_value Error Intf Record Record_key Value
