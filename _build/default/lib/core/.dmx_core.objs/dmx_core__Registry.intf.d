lib/core/registry.mli: Ctx Descriptor Dmx_catalog Dmx_value Error Intf Record Record_key
