lib/core/intf.mli: Attrlist Cost Ctx Descriptor Dmx_catalog Dmx_expr Dmx_value Error Record Record_key Schema Value
