lib/core/error.ml: Fmt Stdlib
