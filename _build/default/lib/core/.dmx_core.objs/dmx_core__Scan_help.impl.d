lib/core/scan_help.ml: Dmx_expr Intf List
