(** Errors crossing the generic interfaces. *)

type t =
  | Veto of { attachment : string; reason : string }
      (** an attached procedure vetoed the relation modification *)
  | Constraint_violation of string
  | Duplicate_key of string
  | Key_not_found of string
  | Lock_conflict of { txid : int; holders : int list }
  | Deadlock_victim of { txid : int }
  | Read_only of string  (** operation refused by the storage method *)
  | No_such_relation of string
  | No_such_attachment of string
  | Schema_error of string
  | Ddl_error of string
  | Authorization_denied of string
  | Internal of string

exception Error of t

val veto : attachment:string -> string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val raise_err : t -> 'a
val fail : ('a, Format.formatter, unit, ('b, t) result) format4 -> 'a
(** [fail fmt...] builds [Error (Internal msg)] — shorthand in extensions. *)
