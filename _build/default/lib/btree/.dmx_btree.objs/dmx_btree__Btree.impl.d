lib/btree/btree.ml: Array Buffer_pool Bytes Codec Disk Dmx_page Dmx_value Fmt Int List String Value
