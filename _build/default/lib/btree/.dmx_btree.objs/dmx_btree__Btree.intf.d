lib/btree/btree.mli: Dmx_page Dmx_value Value
