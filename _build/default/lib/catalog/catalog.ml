open Dmx_value

module Imap = Map.Make (Int)
module Smap = Map.Make (String)

type t = {
  mutable rels : Descriptor.t Imap.t;
  mutable by_name : int Smap.t;
  mutable next_id : int;
  mutable is_dirty : bool;
  path : string option;
}

let create ?path () =
  { rels = Imap.empty; by_name = Smap.empty; next_id = 1; is_dirty = false; path }

let canon = String.lowercase_ascii
let dirty t = t.is_dirty
let next_rel_id t = t.next_id

let add_relation t ~rel_name ~schema ~smethod_id ~smethod_desc =
  if Smap.mem (canon rel_name) t.by_name then
    Error (Fmt.str "relation %S already exists" rel_name)
  else begin
    let rel_id = t.next_id in
    t.next_id <- rel_id + 1;
    let desc =
      Descriptor.make ~rel_id ~rel_name ~schema ~smethod_id ~smethod_desc
    in
    t.rels <- Imap.add rel_id desc t.rels;
    t.by_name <- Smap.add (canon rel_name) rel_id t.by_name;
    t.is_dirty <- true;
    Ok desc
  end

let remove_relation t rel_id =
  match Imap.find_opt rel_id t.rels with
  | None -> Error (Fmt.str "no relation with id %d" rel_id)
  | Some desc ->
    t.rels <- Imap.remove rel_id t.rels;
    t.by_name <- Smap.remove (canon desc.Descriptor.rel_name) t.by_name;
    t.is_dirty <- true;
    Ok desc

let find t name =
  Option.bind (Smap.find_opt (canon name) t.by_name) (fun id ->
      Imap.find_opt id t.rels)

let find_by_id t id = Imap.find_opt id t.rels
let relations t = Imap.bindings t.rels |> List.map snd

let set_attachment_slot t ~rel_id ~slot desc =
  match Imap.find_opt rel_id t.rels with
  | None -> invalid_arg (Fmt.str "Catalog: no relation %d" rel_id)
  | Some d ->
    Descriptor.set_attachment_desc d slot desc;
    t.is_dirty <- true

let set_smethod_desc t ~rel_id desc =
  match Imap.find_opt rel_id t.rels with
  | None -> invalid_arg (Fmt.str "Catalog: no relation %d" rel_id)
  | Some d ->
    Descriptor.set_smethod_desc d desc;
    t.is_dirty <- true

(* ---- persistence ---- *)

let magic = "DMXCATLG"

let save t =
  match t.path with
  | None -> ()
  | Some path ->
    let e = Codec.Enc.create ~size:4096 () in
    Codec.Enc.string e magic;
    Codec.Enc.varint e t.next_id;
    Codec.Enc.list e Descriptor.enc (relations t);
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (Codec.Enc.to_string e);
    close_out oc;
    Sys.rename tmp path;
    t.is_dirty <- false

let load ~path =
  if not (Sys.file_exists path) then create ~path ()
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let data = really_input_string ic n in
    close_in ic;
    let d = Codec.Dec.of_string data in
    if Codec.Dec.string d <> magic then
      failwith (Fmt.str "Catalog.load: %s is not a dmx catalog" path);
    let next_id = Codec.Dec.varint d in
    let descs = Codec.Dec.list d Descriptor.dec in
    let t = create ~path () in
    t.next_id <- next_id;
    List.iter
      (fun (desc : Descriptor.t) ->
        t.rels <- Imap.add desc.rel_id desc t.rels;
        t.by_name <- Smap.add (canon desc.rel_name) desc.rel_id t.by_name)
      descs;
    t.is_dirty <- false;
    t
  end

(* ---- logged operations and their testable undo ---- *)

type op =
  | Create_rel of Descriptor.t
  | Drop_rel of Descriptor.t
  | Set_attachment of {
      rel_id : int;
      slot : int;
      old_desc : string option;
      new_desc : string option;
    }

let encode_op op =
  let e = Codec.Enc.create () in
  (match op with
  | Create_rel desc ->
    Codec.Enc.byte e 0;
    Descriptor.enc e desc
  | Drop_rel desc ->
    Codec.Enc.byte e 1;
    Descriptor.enc e desc
  | Set_attachment { rel_id; slot; old_desc; new_desc } ->
    Codec.Enc.byte e 2;
    Codec.Enc.varint e rel_id;
    Codec.Enc.varint e slot;
    Codec.Enc.option e Codec.Enc.string old_desc;
    Codec.Enc.option e Codec.Enc.string new_desc);
  Codec.Enc.to_string e

let decode_op data =
  let d = Codec.Dec.of_string data in
  match Codec.Dec.byte d with
  | 0 -> Create_rel (Descriptor.dec d)
  | 1 -> Drop_rel (Descriptor.dec d)
  | 2 ->
    let rel_id = Codec.Dec.varint d in
    let slot = Codec.Dec.varint d in
    let old_desc = Codec.Dec.option d Codec.Dec.string in
    let new_desc = Codec.Dec.option d Codec.Dec.string in
    Set_attachment { rel_id; slot; old_desc; new_desc }
  | n -> failwith (Fmt.str "Catalog.decode_op: bad tag %d" n)

let undo_op t = function
  | Create_rel desc ->
    (* Remove if present; never applied (pre-crash, un-forced) is a no-op. *)
    ignore (remove_relation t desc.Descriptor.rel_id)
  | Drop_rel desc ->
    if Imap.mem desc.Descriptor.rel_id t.rels then ()
    else begin
      t.rels <- Imap.add desc.Descriptor.rel_id desc t.rels;
      t.by_name <-
        Smap.add (canon desc.Descriptor.rel_name) desc.Descriptor.rel_id
          t.by_name;
      t.next_id <- max t.next_id (desc.Descriptor.rel_id + 1);
      t.is_dirty <- true
    end
  | Set_attachment { rel_id; slot; old_desc; _ } -> begin
    match Imap.find_opt rel_id t.rels with
    | None -> ()  (* relation gone: nothing to restore *)
    | Some d ->
      Descriptor.set_attachment_desc d slot old_desc;
      t.is_dirty <- true
  end
