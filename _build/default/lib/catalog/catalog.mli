(** The common descriptor-management facility.

    "Instead of requiring each relation storage or access path to store and
    access its own descriptor data, the common system will maintain and manage
    relation descriptors. Each extension supplies and interprets the contents
    of its own descriptor data, but the common system manages the composite
    relation descriptor" (paper p. 224).

    Catalog mutations are undoable: the DDL layer logs each one as an [Ext]
    record with [Catalog] source using {!encode_op}, and the recovery driver
    calls {!undo_op}. Undo is testable (tolerates never-applied /
    already-undone states) per the recovery policy in DESIGN.md.

    Persistence is a snapshot file written by {!save} during the commit force
    step and on clean shutdown. *)

open Dmx_value

type t

val create : ?path:string -> unit -> t
(** In-memory catalog; [path] enables {!save}/{!load}. *)

val load : path:string -> t
(** Load a snapshot if the file exists, else an empty catalog bound to it. *)

val save : t -> unit
val dirty : t -> bool

val next_rel_id : t -> int
(** Peek at the id the next {!add_relation} will use. *)

val add_relation :
  t -> rel_name:string -> schema:Schema.t -> smethod_id:int ->
  smethod_desc:string -> (Descriptor.t, string) result
(** Fails on duplicate names. *)

val remove_relation : t -> int -> (Descriptor.t, string) result
val find : t -> string -> Descriptor.t option
val find_by_id : t -> int -> Descriptor.t option
val relations : t -> Descriptor.t list

val set_attachment_slot : t -> rel_id:int -> slot:int -> string option -> unit
val set_smethod_desc : t -> rel_id:int -> string -> unit

(** Logged catalog operations. *)
type op =
  | Create_rel of Descriptor.t
  | Drop_rel of Descriptor.t
  | Set_attachment of {
      rel_id : int;
      slot : int;
      old_desc : string option;
      new_desc : string option;
    }

val encode_op : op -> string
val decode_op : string -> op

val undo_op : t -> op -> unit
(** Apply the inverse of [op], testably. *)
