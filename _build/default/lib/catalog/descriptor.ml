open Dmx_value

let max_attachment_types = 32

type t = {
  rel_id : int;
  rel_name : string;
  schema : Schema.t;
  smethod_id : int;
  mutable smethod_desc : string;
  mutable attachments : string option array;
  mutable version : int;
}

let make ~rel_id ~rel_name ~schema ~smethod_id ~smethod_desc =
  {
    rel_id;
    rel_name;
    schema;
    smethod_id;
    smethod_desc;
    attachments = Array.make max_attachment_types None;
    version = 0;
  }

let check_slot n =
  if n < 0 || n >= max_attachment_types then
    invalid_arg (Fmt.str "Descriptor: attachment type id %d out of range" n)

let attachment_desc t n =
  check_slot n;
  t.attachments.(n)

let set_attachment_desc t n desc =
  check_slot n;
  t.attachments.(n) <- desc;
  t.version <- t.version + 1

let set_smethod_desc t desc = t.smethod_desc <- desc

let attachment_types_present t =
  let acc = ref [] in
  for n = max_attachment_types - 1 downto 0 do
    if t.attachments.(n) <> None then acc := n :: !acc
  done;
  !acc

let enc e t =
  let open Codec.Enc in
  varint e t.rel_id;
  string e t.rel_name;
  bytes e (Codec.encode_schema t.schema);
  varint e t.smethod_id;
  string e t.smethod_desc;
  varint e t.version;
  list e
    (fun e (n, desc) ->
      varint e n;
      string e desc)
    (List.filter_map
       (fun n -> Option.map (fun d -> (n, d)) t.attachments.(n))
       (List.init max_attachment_types Fun.id))

let dec d =
  let open Codec.Dec in
  let rel_id = varint d in
  let rel_name = string d in
  let schema = Codec.decode_schema (bytes d) in
  let smethod_id = varint d in
  let smethod_desc = string d in
  let version = varint d in
  let t = make ~rel_id ~rel_name ~schema ~smethod_id ~smethod_desc in
  t.version <- version;
  List.iter
    (fun (n, desc) -> t.attachments.(n) <- Some desc)
    (list d (fun d ->
         let n = varint d in
         let desc = string d in
         (n, desc)));
  t

let copy t = { t with attachments = Array.copy t.attachments }

let pp ppf t =
  Fmt.pf ppf "@[<v>relation %S (id %d, v%d)@,schema %a@,storage method %d (%d-byte descriptor)@,attachment slots: %a@]"
    t.rel_name t.rel_id t.version Schema.pp t.schema t.smethod_id
    (String.length t.smethod_desc)
    Fmt.(list ~sep:(any ", ") int)
    (attachment_types_present t)
