open Dmx_value

type t = (string * string) list

let empty = []

let canon = String.lowercase_ascii

let find t key =
  List.find_map
    (fun (k, v) -> if canon k = canon key then Some v else None)
    t

let get_string ?default t key =
  match find t key with None -> Option.map Fun.id default | some -> some

let get_int t key =
  match find t key with
  | None -> Ok None
  | Some v -> begin
    match int_of_string_opt v with
    | Some n -> Ok (Some n)
    | None -> Error (Fmt.str "attribute %s: %S is not an integer" key v)
  end

let get_bool t key =
  match find t key with
  | None -> Ok None
  | Some v -> begin
    match String.lowercase_ascii v with
    | "true" | "yes" | "1" -> Ok (Some true)
    | "false" | "no" | "0" -> Ok (Some false)
    | _ -> Error (Fmt.str "attribute %s: %S is not a boolean" key v)
  end

type attr_ty = A_int | A_bool | A_string

type spec = {
  attr_name : string;
  attr_ty : attr_ty;
  required : bool;
}

let spec ?(required = false) attr_name attr_ty = { attr_name; attr_ty; required }

let validate specs t =
  let rec dup_check seen = function
    | [] -> Ok ()
    | (k, _) :: rest ->
      let k = canon k in
      if List.mem k seen then Error (Fmt.str "duplicate attribute %s" k)
      else dup_check (k :: seen) rest
  in
  let unknown_check () =
    List.find_map
      (fun (k, _) ->
        if List.exists (fun s -> canon s.attr_name = canon k) specs then None
        else Some (Fmt.str "unknown attribute %s" k))
      t
  in
  let value_check () =
    List.find_map
      (fun s ->
        match find t s.attr_name with
        | None -> if s.required then Some (Fmt.str "missing required attribute %s" s.attr_name) else None
        | Some v -> begin
          match s.attr_ty with
          | A_string -> None
          | A_int ->
            if int_of_string_opt v = None then
              Some (Fmt.str "attribute %s: %S is not an integer" s.attr_name v)
            else None
          | A_bool -> begin
            match String.lowercase_ascii v with
            | "true" | "yes" | "1" | "false" | "no" | "0" -> None
            | _ -> Some (Fmt.str "attribute %s: %S is not a boolean" s.attr_name v)
          end
        end)
      specs
  in
  match dup_check [] t with
  | Error _ as e -> e
  | Ok () -> begin
    match unknown_check () with
    | Some e -> Error e
    | None -> begin
      match value_check () with Some e -> Error e | None -> Ok ()
    end
  end

let enc e t =
  Codec.Enc.list e
    (fun e (k, v) ->
      Codec.Enc.string e k;
      Codec.Enc.string e v)
    t

let dec d =
  Codec.Dec.list d (fun d ->
      let k = Codec.Dec.string d in
      let v = Codec.Dec.string d in
      (k, v))

let pp ppf t =
  Fmt.pf ppf "(%a)"
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string string))
    t
