(** The composite, extensible relation descriptor.

    "The relation descriptor is composed of a relation storage method
    descriptor and descriptors for any attachments defined on the relation
    instance. The structure of the relation descriptor is a record whose
    header contains the storage method identifier and whose first field
    contains the storage method descriptor. Each attachment has an assigned
    identifier, and the descriptor for the attachment with identifier N is
    found in field N of the relation descriptor. If there are no instances of
    attachment type N defined on a particular relation, then field N of that
    relation's descriptor will be NULL." (paper pp. 224–225)

    The common system manages the composite and never interprets the
    per-extension fields; each extension encodes/decodes its own field (all
    instances of that attachment type on the relation live in its one slot).
    The paper notes this record-oriented format caps the number of attachment
    types at "a few dozen" — {!max_attachment_types} makes that concrete. *)

open Dmx_value

val max_attachment_types : int
(** 32. *)

type t = {
  rel_id : int;
  rel_name : string;
  schema : Schema.t;
  smethod_id : int;
  mutable smethod_desc : string;  (** storage-method-interpreted *)
  mutable attachments : string option array;
      (** slot [N] belongs to attachment type [N] *)
  mutable version : int;
      (** bumped on every descriptor change; bound query plans record it and
          re-translate when stale *)
}

val make :
  rel_id:int -> rel_name:string -> schema:Schema.t -> smethod_id:int ->
  smethod_desc:string -> t

val attachment_desc : t -> int -> string option
val set_attachment_desc : t -> int -> string option -> unit
(** Also bumps [version]. *)

val set_smethod_desc : t -> string -> unit
(** Updates the storage method's field without bumping [version]: storage
    methods mutate their descriptor freely at run time (e.g. recording a new
    root page) without invalidating plans. *)

val attachment_types_present : t -> int list
(** Ascending — the invocation order for attached procedures. *)

val enc : Codec.Enc.t -> t -> unit
val dec : Codec.Dec.t -> t
val copy : t -> t
val pp : Format.formatter -> t -> unit
