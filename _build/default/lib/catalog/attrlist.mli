(** Extension attribute/value lists.

    "The data definition language of the DBMS has been extended to allow
    specification of a storage method or attachment type and an
    attribute/value list for extension-specific parameters" (paper p. 222).
    Extensions validate and interpret their own lists; the common system only
    transports them. *)

type t = (string * string) list

val empty : t
val find : t -> string -> string option
val get_string : ?default:string -> t -> string -> string option
val get_int : t -> string -> (int option, string) result
val get_bool : t -> string -> (bool option, string) result

(** Declarative validation spec for an extension's attributes. *)
type attr_ty = A_int | A_bool | A_string

type spec = {
  attr_name : string;
  attr_ty : attr_ty;
  required : bool;
}

val spec : ?required:bool -> string -> attr_ty -> spec

val validate : spec list -> t -> (unit, string) result
(** Checks unknown keys, duplicates, missing required attributes and value
    syntax. *)

val enc : Dmx_value.Codec.Enc.t -> t -> unit
val dec : Dmx_value.Codec.Dec.t -> t
val pp : Format.formatter -> t -> unit
