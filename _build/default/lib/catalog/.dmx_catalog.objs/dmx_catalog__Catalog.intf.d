lib/catalog/catalog.mli: Descriptor Dmx_value Schema
