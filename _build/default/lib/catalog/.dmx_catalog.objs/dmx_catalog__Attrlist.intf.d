lib/catalog/attrlist.mli: Dmx_value Format
