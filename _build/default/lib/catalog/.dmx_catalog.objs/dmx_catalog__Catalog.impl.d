lib/catalog/catalog.ml: Codec Descriptor Dmx_value Fmt Int List Map Option String Sys
