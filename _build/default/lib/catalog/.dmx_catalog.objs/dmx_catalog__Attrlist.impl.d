lib/catalog/attrlist.ml: Codec Dmx_value Fmt Fun List Option String
