lib/catalog/descriptor.mli: Codec Dmx_value Format Schema
