lib/catalog/descriptor.ml: Array Codec Dmx_value Fmt Fun List Option Schema String
