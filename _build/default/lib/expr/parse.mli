(** A small predicate parser for examples, the shell and tests.

    Grammar (case-insensitive keywords):
    {v
    expr     ::= or
    or       ::= and (OR and)*
    and      ::= unary (AND unary)*
    unary    ::= NOT unary | cmp
    cmp      ::= add ((= | <> | != | < | <= | > | >=) add)?
               | add IS [NOT] NULL
               | add [NOT] LIKE string
               | add [NOT] IN lparen literal (comma literal)* rparen
               | add BETWEEN add AND add
    add      ::= mul ((+|-) mul)*
    mul      ::= atom ((star|/|percent) atom)*
    atom     ::= literal | identifier | ?n | lparen expr rparen
               | identifier lparen args rparen
    literal  ::= integer | float | string | TRUE | FALSE | NULL
    v}
    Identifiers are resolved to field positions through the supplied schema. *)

open Dmx_value

val parse : Schema.t -> string -> (Expr.t, string) result
val parse_exn : Schema.t -> string -> Expr.t
