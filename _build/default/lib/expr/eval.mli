(** Expression evaluation with SQL three-valued logic.

    The common-services predicate evaluator. Storage methods and access paths
    call {!test} on the current record while its field values are still in the
    buffer pool; integrity constraint attachments and the query execution
    engine share the same facility (paper p. 223–224). *)

open Dmx_value

exception Error of string

type truth = True | False | Unknown

val eval : ?params:Value.t array -> Record.t -> Expr.t -> Value.t
(** Evaluate a scalar expression against a record. NULL propagates through
    comparisons, arithmetic and (by default) function calls. Raises {!Error}
    on type mismatches or unknown functions. *)

val truth : ?params:Value.t array -> Record.t -> Expr.t -> truth
(** Evaluate a predicate under three-valued logic. *)

val test : ?params:Value.t array -> Record.t -> Expr.t -> bool
(** [test r p] is [true] iff [truth r p = True] — the filtering rule: a record
    qualifies only when the predicate is definitely true. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE matching with [%] (any run) and [_] (any one char). *)

val pp_truth : Format.formatter -> truth -> unit
