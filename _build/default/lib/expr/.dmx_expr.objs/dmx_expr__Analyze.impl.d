lib/expr/analyze.ml: Array Dmx_value Eval Expr Float List Option String Value
