lib/expr/expr.mli: Codec Dmx_value Format Value
