lib/expr/parse.ml: Buffer Dmx_value Expr Fmt Int64 List Schema String Value
