lib/expr/eval.mli: Dmx_value Expr Format Record Value
