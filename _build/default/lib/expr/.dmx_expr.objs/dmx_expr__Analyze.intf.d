lib/expr/analyze.mli: Dmx_value Expr Value
