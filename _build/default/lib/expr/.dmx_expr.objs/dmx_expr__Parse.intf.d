lib/expr/parse.mli: Dmx_value Expr Schema
