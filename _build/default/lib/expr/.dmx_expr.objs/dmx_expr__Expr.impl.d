lib/expr/expr.ml: Array Codec Dmx_value Fmt Int List Stdlib Value
