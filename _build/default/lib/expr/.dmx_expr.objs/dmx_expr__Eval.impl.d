lib/expr/eval.ml: Array Dmx_value Expr Float Fmt Func Int64 List Option String Value
