lib/expr/func.mli: Dmx_value Value
