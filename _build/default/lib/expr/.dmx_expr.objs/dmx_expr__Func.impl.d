lib/expr/func.ml: Dmx_value Float Fmt Hashtbl Int64 List String Value
