open Dmx_value

let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc c -> Expr.And (acc, c)) e rest)

let is_field_free e = Expr.fields_used e = []

let const_value ?params e =
  if not (is_field_free e) then None
  else if Expr.max_param e >= 0 && params = None then None
  else
    match Eval.eval ?params [||] e with
    | v -> Some v
    | exception Eval.Error _ -> None

type bound = Incl of Value.t | Excl of Value.t | Unbounded
type range = { lo : bound; hi : bound }

let full_range = { lo = Unbounded; hi = Unbounded }

let range_contains r v =
  let lo_ok =
    match r.lo with
    | Unbounded -> true
    | Incl b -> Value.compare v b >= 0
    | Excl b -> Value.compare v b > 0
  in
  let hi_ok =
    match r.hi with
    | Unbounded -> true
    | Incl b -> Value.compare v b <= 0
    | Excl b -> Value.compare v b < 0
  in
  lo_ok && hi_ok

type sarg =
  | Eq of int * Expr.t
  | Cmp_range of int * Expr.cmp * Expr.t
  | Encloses of int array * Expr.t array

let flip_cmp : Expr.cmp -> Expr.cmp = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

(* rhs must be bindable at execution time: no field references. *)
let bindable e = is_field_free e

let sarg_of_conjunct (e : Expr.t) =
  match e with
  | Cmp (op, Field i, rhs) when bindable rhs -> begin
    match op with
    | Eq -> Some (Eq (i, rhs))
    | Lt | Le | Gt | Ge -> Some (Cmp_range (i, op, rhs))
    | Ne -> None
  end
  | Cmp (op, lhs, Field i) when bindable lhs -> begin
    match flip_cmp op with
    | Eq -> Some (Eq (i, lhs))
    | (Lt | Le | Gt | Ge) as op' -> Some (Cmp_range (i, op', lhs))
    | Ne -> None
  end
  | Between (Field i, lo, hi) when bindable lo && bindable hi ->
    (* Callers that want both bounds expand Between first (see
       [expand_between]); when asked about the raw conjunct, report the low
       bound. *)
    Some (Cmp_range (i, Ge, lo))
  | Call (name, args) when String.lowercase_ascii name = "encloses" -> begin
    (* encloses(q0,q1,q2,q3, $a,$b,$c,$d): query rect then data-rect fields *)
    match args with
    | [ q0; q1; q2; q3; Field a; Field b; Field c; Field d ]
      when List.for_all bindable [ q0; q1; q2; q3 ] ->
      Some (Encloses ([| a; b; c; d |], [| q0; q1; q2; q3 |]))
    | _ -> None
  end
  | _ -> None

(* Between is rewritten into its two comparisons before sarg extraction so
   both bounds are visible. *)
let rec expand_between (e : Expr.t) : Expr.t list =
  match e with
  | Between (x, lo, hi) -> [ Expr.Cmp (Ge, x, lo); Expr.Cmp (Le, x, hi) ]
  | And (a, b) -> expand_between a @ expand_between b
  | e -> [ e ]

let sargs e =
  conjuncts e |> List.concat_map expand_between
  |> List.filter_map sarg_of_conjunct

type key_match = {
  eq_prefix : int;
  range_on_next : (Expr.cmp * Expr.t) list;
  matched : Expr.t list;
  residual : Expr.t list;
}

let match_key ~key_fields pred =
  let cs = conjuncts pred |> List.concat_map expand_between in
  let tagged = List.map (fun c -> (c, sarg_of_conjunct c)) cs in
  let eq_on f =
    List.find_map
      (function c, Some (Eq (i, rhs)) when i = f -> Some (c, rhs) | _ -> None)
      tagged
  in
  let ranges_on f =
    List.filter_map
      (function
        | c, Some (Cmp_range (i, op, rhs)) when i = f -> Some (c, (op, rhs))
        | _ -> None)
      tagged
  in
  let rec prefix k matched =
    if k >= Array.length key_fields then (k, matched)
    else
      match eq_on key_fields.(k) with
      | Some (c, _) -> prefix (k + 1) (c :: matched)
      | None -> (k, matched)
  in
  let eq_prefix, matched = prefix 0 [] in
  let range_cs, range_on_next =
    if eq_prefix < Array.length key_fields then
      let rs = ranges_on key_fields.(eq_prefix) in
      (List.map fst rs, List.map snd rs)
    else ([], [])
  in
  let matched = List.rev_append matched range_cs in
  let residual = List.filter (fun c -> not (List.memq c matched)) cs in
  { eq_prefix; range_on_next; matched; residual }

let key_range ?params ~key_fields pred =
  let m = match_key ~key_fields pred in
  if m.eq_prefix = 0 && m.range_on_next = [] then None
  else
    let eq_values =
      Array.init m.eq_prefix (fun k ->
          let f = key_fields.(k) in
          let rhs =
            List.find_map
              (fun c ->
                match sarg_of_conjunct c with
                | Some (Eq (i, rhs)) when i = f -> Some rhs
                | _ -> None)
              m.matched
          in
          match rhs with
          | None -> None
          | Some rhs -> const_value ?params rhs)
    in
    if Array.exists (fun v -> v = None) eq_values then None
    else
      let eq_values = Array.map Option.get eq_values in
      let tighten r (op, rhs) =
        match const_value ?params rhs with
        | None -> r
        | Some v -> begin
          match (op : Expr.cmp) with
          | Ge -> { r with lo = Incl v }
          | Gt -> { r with lo = Excl v }
          | Le -> { r with hi = Incl v }
          | Lt -> { r with hi = Excl v }
          | Eq | Ne -> r
        end
      in
      let range = List.fold_left tighten full_range m.range_on_next in
      Some (eq_values, range)

let selectivity pred =
  let rec sel (e : Expr.t) =
    match e with
    | Const (Bool true) -> 1.0
    | Const (Bool false) -> 0.0
    | And (a, b) -> sel a *. sel b
    | Or (a, b) ->
      let sa = sel a and sb = sel b in
      Float.min 1.0 (sa +. sb -. (sa *. sb))
    | Not a -> 1.0 -. sel a
    | Cmp (Eq, _, _) -> 0.05
    | Cmp (Ne, _, _) -> 0.95
    | Cmp ((Lt | Le | Gt | Ge), _, _) -> 0.3
    | Between _ -> 0.25
    | In_list (_, vs) -> Float.min 0.5 (0.05 *. float_of_int (List.length vs))
    | Is_null _ -> 0.1
    | Like _ -> 0.2
    | Call _ -> 0.1
    | _ -> 0.5
  in
  Float.max 0.0 (Float.min 1.0 (sel pred))
