open Dmx_value

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod

type t =
  | Const of Value.t
  | Field of int
  | Param of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * t * t
  | Is_null of t
  | Arith of arith * t * t
  | Neg of t
  | Like of t * string
  | In_list of t * Value.t list
  | Between of t * t * t
  | Call of string * t list

let tru = Const (Bool true)
let fals = Const (Bool false)
let cint n = Const (Value.int n)
let cstr s = Const (String s)
let cfloat f = Const (Float f)
let field i = Field i
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not_ a = Not a
let eq a b = Cmp (Eq, a, b)
let ne a b = Cmp (Ne, a, b)
let lt a b = Cmp (Lt, a, b)
let le a b = Cmp (Le, a, b)
let gt a b = Cmp (Gt, a, b)
let ge a b = Cmp (Ge, a, b)

let rec fold_subexprs f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Field _ | Param _ -> acc
  | Not a | Is_null a | Neg a | Like (a, _) | In_list (a, _) ->
    fold_subexprs f acc a
  | And (a, b) | Or (a, b) | Cmp (_, a, b) | Arith (_, a, b) ->
    fold_subexprs f (fold_subexprs f acc a) b
  | Between (a, b, c) ->
    fold_subexprs f (fold_subexprs f (fold_subexprs f acc a) b) c
  | Call (_, args) -> List.fold_left (fold_subexprs f) acc args

let fields_used e =
  let fs =
    fold_subexprs
      (fun acc e -> match e with Field i -> i :: acc | _ -> acc)
      [] e
  in
  List.sort_uniq Int.compare fs

let max_param e =
  fold_subexprs
    (fun acc e -> match e with Param i -> max acc i | _ -> acc)
    (-1) e

let rec rename_fields f = function
  | Const _ as e -> e
  | Field i -> Field (f i)
  | Param _ as e -> e
  | Not a -> Not (rename_fields f a)
  | And (a, b) -> And (rename_fields f a, rename_fields f b)
  | Or (a, b) -> Or (rename_fields f a, rename_fields f b)
  | Cmp (c, a, b) -> Cmp (c, rename_fields f a, rename_fields f b)
  | Is_null a -> Is_null (rename_fields f a)
  | Arith (op, a, b) -> Arith (op, rename_fields f a, rename_fields f b)
  | Neg a -> Neg (rename_fields f a)
  | Like (a, p) -> Like (rename_fields f a, p)
  | In_list (a, vs) -> In_list (rename_fields f a, vs)
  | Between (a, b, c) ->
    Between (rename_fields f a, rename_fields f b, rename_fields f c)
  | Call (name, args) -> Call (name, List.map (rename_fields f) args)

(* Note: [&&] is shadowed by the expression-building operator above. *)
let rec subst_params params = function
  | Param i when i >= 0 -> if i < Array.length params then Const params.(i) else Param i
  | (Const _ | Field _ | Param _) as e -> e
  | Not a -> Not (subst_params params a)
  | And (a, b) -> And (subst_params params a, subst_params params b)
  | Or (a, b) -> Or (subst_params params a, subst_params params b)
  | Cmp (c, a, b) -> Cmp (c, subst_params params a, subst_params params b)
  | Is_null a -> Is_null (subst_params params a)
  | Arith (op, a, b) -> Arith (op, subst_params params a, subst_params params b)
  | Neg a -> Neg (subst_params params a)
  | Like (a, p) -> Like (subst_params params a, p)
  | In_list (a, vs) -> In_list (subst_params params a, vs)
  | Between (a, b, c) ->
    Between (subst_params params a, subst_params params b, subst_params params c)
  | Call (name, args) -> Call (name, List.map (subst_params params) args)

let equal = Stdlib.( = )

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Field i -> Fmt.pf ppf "$%d" i
  | Param i -> Fmt.pf ppf "?%d" i
  | Not a -> Fmt.pf ppf "NOT (%a)" pp a
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp a pp b
  | Cmp (c, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (cmp_to_string c) pp b
  | Is_null a -> Fmt.pf ppf "(%a IS NULL)" pp a
  | Arith (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (arith_to_string op) pp b
  | Neg a -> Fmt.pf ppf "(-%a)" pp a
  | Like (a, p) -> Fmt.pf ppf "(%a LIKE %S)" pp a p
  | In_list (a, vs) ->
    Fmt.pf ppf "(%a IN (%a))" pp a Fmt.(list ~sep:(any ", ") Value.pp) vs
  | Between (a, b, c) -> Fmt.pf ppf "(%a BETWEEN %a AND %a)" pp a pp b pp c
  | Call (name, args) ->
    Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") pp) args

let to_string e = Fmt.str "%a" pp e

let cmp_tag = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let cmp_of_tag = function
  | 0 -> Eq
  | 1 -> Ne
  | 2 -> Lt
  | 3 -> Le
  | 4 -> Gt
  | 5 -> Ge
  | n -> failwith (Fmt.str "Expr: bad cmp tag %d" n)

let arith_tag = function Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4

let arith_of_tag = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Div
  | 4 -> Mod
  | n -> failwith (Fmt.str "Expr: bad arith tag %d" n)

let rec enc e expr =
  let open Codec.Enc in
  match expr with
  | Const v ->
    byte e 0;
    value e v
  | Field i ->
    byte e 1;
    varint e i
  | Param i ->
    byte e 2;
    varint e i
  | Not a ->
    byte e 3;
    enc e a
  | And (a, b) ->
    byte e 4;
    enc e a;
    enc e b
  | Or (a, b) ->
    byte e 5;
    enc e a;
    enc e b
  | Cmp (c, a, b) ->
    byte e 6;
    byte e (cmp_tag c);
    enc e a;
    enc e b
  | Is_null a ->
    byte e 7;
    enc e a
  | Arith (op, a, b) ->
    byte e 8;
    byte e (arith_tag op);
    enc e a;
    enc e b
  | Neg a ->
    byte e 9;
    enc e a
  | Like (a, p) ->
    byte e 10;
    enc e a;
    string e p
  | In_list (a, vs) ->
    byte e 11;
    enc e a;
    list e value vs
  | Between (a, b, c) ->
    byte e 12;
    enc e a;
    enc e b;
    enc e c
  | Call (name, args) ->
    byte e 13;
    string e name;
    varint e (List.length args);
    List.iter (enc e) args

let rec dec d =
  let open Codec.Dec in
  match byte d with
  | 0 -> Const (value d)
  | 1 -> Field (varint d)
  | 2 -> Param (varint d)
  | 3 -> Not (dec d)
  | 4 ->
    let a = dec d in
    let b = dec d in
    And (a, b)
  | 5 ->
    let a = dec d in
    let b = dec d in
    Or (a, b)
  | 6 ->
    let c = cmp_of_tag (byte d) in
    let a = dec d in
    let b = dec d in
    Cmp (c, a, b)
  | 7 -> Is_null (dec d)
  | 8 ->
    let op = arith_of_tag (byte d) in
    let a = dec d in
    let b = dec d in
    Arith (op, a, b)
  | 9 -> Neg (dec d)
  | 10 ->
    let a = dec d in
    let p = string d in
    Like (a, p)
  | 11 ->
    let a = dec d in
    let vs = list d value in
    In_list (a, vs)
  | 12 ->
    let a = dec d in
    let b = dec d in
    let c = dec d in
    Between (a, b, c)
  | 13 ->
    let name = string d in
    let n = varint d in
    let args = List.init n (fun _ -> dec d) in
    Call (name, args)
  | n -> failwith (Fmt.str "Expr.dec: bad tag %d" n)

let encode expr =
  let e = Codec.Enc.create () in
  enc e expr;
  Codec.Enc.to_bytes e

let decode b = dec (Codec.Dec.of_bytes b)
