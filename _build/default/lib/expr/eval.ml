open Dmx_value

exception Error of string

type truth = True | False | Unknown

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let pp_truth ppf t =
  Fmt.string ppf
    (match t with True -> "TRUE" | False -> "FALSE" | Unknown -> "UNKNOWN")

let truth_of_bool b = if b then True else False

let t_and a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let t_or a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let t_not = function True -> False | False -> True | Unknown -> Unknown

let value_of_truth = function
  | True -> Value.Bool true
  | False -> Value.Bool false
  | Unknown -> Value.Null

let truth_of_value = function
  | Value.Null -> Unknown
  | Value.Bool b -> truth_of_bool b
  | v -> err "expected boolean, got %a" Value.pp v

(* Numeric coercion: Int op Float promotes to Float. *)
let arith op a b =
  let open Value in
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> begin
    match (op : Expr.arith) with
    | Add -> Int (Int64.add x y)
    | Sub -> Int (Int64.sub x y)
    | Mul -> Int (Int64.mul x y)
    | Div -> if y = 0L then err "division by zero" else Int (Int64.div x y)
    | Mod -> if y = 0L then err "division by zero" else Int (Int64.rem x y)
  end
  | (Int _ | Float _), (Int _ | Float _) ->
    let x = Option.get (to_float a) and y = Option.get (to_float b) in
    begin
      match (op : Expr.arith) with
      | Add -> Float (x +. y)
      | Sub -> Float (x -. y)
      | Mul -> Float (x *. y)
      | Div -> if y = 0. then err "division by zero" else Float (x /. y)
      | Mod -> err "mod on float"
    end
  | String x, String y when op = Expr.Add -> String (x ^ y)
  | _ -> err "arithmetic on %a and %a" Value.pp a Value.pp b

let compare_values a b =
  let open Value in
  match a, b with
  | Int x, Float y -> Some (Float.compare (Int64.to_float x) y)
  | Float x, Int y -> Some (Float.compare x (Int64.to_float y))
  | _ -> begin
    match type_of a, type_of b with
    | Some ta, Some tb when ta = tb -> Some (Value.compare a b)
    | _ -> None
  end

let cmp op a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Unknown
  | _ -> begin
    match compare_values a b with
    | None -> err "cannot compare %a with %a" Value.pp a Value.pp b
    | Some c ->
      truth_of_bool
        (match (op : Expr.cmp) with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0)
  end

(* LIKE matching by backtracking on '%'. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si =
    if pi >= np then si >= ns
    else
      match pattern.[pi] with
      | '%' ->
        let rec try_from k = k <= ns && (go (pi + 1) k || try_from (k + 1)) in
        try_from si
      | '_' -> si < ns && go (pi + 1) (si + 1)
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let rec eval_v params record (e : Expr.t) : Value.t =
  match e with
  | Const v -> v
  | Field i ->
    if i < 0 || i >= Array.length record then err "field $%d out of range" i
    else record.(i)
  | Param i ->
    if i < 0 || i >= Array.length params then err "parameter ?%d not supplied" i
    else params.(i)
  | Not a -> value_of_truth (t_not (eval_t params record a))
  | And (a, b) ->
    value_of_truth (t_and (eval_t params record a) (eval_t params record b))
  | Or (a, b) ->
    value_of_truth (t_or (eval_t params record a) (eval_t params record b))
  | Cmp (op, a, b) ->
    value_of_truth (cmp op (eval_v params record a) (eval_v params record b))
  | Is_null a -> Value.Bool (eval_v params record a = Value.Null)
  | Arith (op, a, b) ->
    arith op (eval_v params record a) (eval_v params record b)
  | Neg a -> begin
    match eval_v params record a with
    | Value.Null -> Value.Null
    | Value.Int i -> Value.Int (Int64.neg i)
    | Value.Float f -> Value.Float (-.f)
    | v -> err "negation of %a" Value.pp v
  end
  | Like (a, pattern) -> begin
    match eval_v params record a with
    | Value.Null -> Value.Null
    | Value.String s -> Value.Bool (like_match ~pattern s)
    | v -> err "LIKE on %a" Value.pp v
  end
  | In_list (a, vs) -> begin
    match eval_v params record a with
    | Value.Null -> Value.Null
    | v ->
      let any_null = List.exists (fun x -> x = Value.Null) vs in
      let hit =
        List.exists (fun x -> cmp Expr.Eq v x = True) vs
      in
      if hit then Value.Bool true
      else if any_null then Value.Null
      else Value.Bool false
  end
  | Between (a, lo, hi) ->
    let v = eval_v params record a in
    let lo = eval_v params record lo in
    let hi = eval_v params record hi in
    value_of_truth (t_and (cmp Expr.Ge v lo) (cmp Expr.Le v hi))
  | Call (name, args) -> begin
    match Func.find name with
    | None -> err "unknown function %s" name
    | Some (f, null_call) ->
      let vals = List.map (eval_v params record) args in
      if (not null_call) && List.exists (fun v -> v = Value.Null) vals then
        Value.Null
      else begin
        (* a misbehaving user function must not crash the evaluator with an
           untyped exception *)
        try f vals with
        | Error _ as e -> raise e
        | Failure msg | Invalid_argument msg -> err "function %s: %s" name msg
      end
  end

and eval_t params record e = truth_of_value (eval_v params record e)

let no_params : Value.t array = [||]

let eval ?(params = no_params) record e = eval_v params record e
let truth ?(params = no_params) record e = eval_t params record e
let test ?(params = no_params) record e = eval_t params record e = True
