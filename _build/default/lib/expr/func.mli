(** User/builtin function registry for the predicate evaluator.

    The paper requires the common-services predicate evaluator to "be able to
    call functions that are passed to it". Functions are registered by name at
    the factory (program start) and invoked by [Expr.Call] nodes. A function
    receives evaluated argument values and returns a value; SQL convention
    applies: unless it declares [null_call], a function is not invoked on NULL
    arguments and the result is NULL. *)

open Dmx_value

type impl = Value.t list -> Value.t

val register : ?null_call:bool -> string -> impl -> unit
(** [register name f] adds [f] under [name] (case-insensitive). Raises
    [Invalid_argument] if [name] is already registered. [null_call] (default
    [false]) means the function handles NULL arguments itself. *)

val find : string -> (impl * bool) option
(** [find name] is the implementation and its [null_call] flag. *)

val is_registered : string -> bool
val names : unit -> string list

(** Builtins registered at load time: [abs], [lower], [upper], [length],
    [substr], [mod], and the spatial family [encloses], [overlaps],
    [contains_point], [area] over (xlo, ylo, xhi, yhi) rectangles. *)
