(** Predicate and scalar expression trees.

    This is the representation accepted by the common-services predicate
    evaluator (paper p. 223): filter predicates passed to storage-method and
    access-path scans, integrity-constraint predicates, and query-execution
    predicates all share it.

    Expressions refer to record fields positionally ([Field]); the evaluator
    can use "any combination of fields from a record as operands" and "both
    constant and variable data" ([Const] and [Param]). User functions are
    called through the {!Func} registry. *)

open Dmx_value

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod

type t =
  | Const of Value.t
  | Field of int  (** field position in the current record *)
  | Param of int  (** bind variable, supplied at evaluation time *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * t * t
  | Is_null of t
  | Arith of arith * t * t
  | Neg of t
  | Like of t * string  (** SQL LIKE with [%] and [_] wildcards *)
  | In_list of t * Value.t list
  | Between of t * t * t  (** [Between (e, lo, hi)] *)
  | Call of string * t list
      (** user/builtin function from the {!Func} registry; access paths may
          recognise specific calls (e.g. the R-tree recognises [encloses]) *)

(** Convenience constructors. *)

val tru : t
val fals : t
val cint : int -> t
val cstr : string -> t
val cfloat : float -> t
val field : int -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t

val fields_used : t -> int list
(** Sorted, deduplicated list of field positions the expression reads. *)

val max_param : t -> int
(** Highest [Param] index used, or [-1] if none. *)

val rename_fields : (int -> int) -> t -> t
(** Rewrite field positions (e.g. when projecting through an access path whose
    key holds a subset of the record's fields). *)

val subst_params : Dmx_value.Value.t array -> t -> t
(** Replace each [Param i] with [Const params.(i)]; parameters beyond the
    array are left in place. Used when binding a saved plan's predicate to
    execution-time parameter values. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val enc : Codec.Enc.t -> t -> unit
val dec : Codec.Dec.t -> t
val encode : t -> bytes
val decode : bytes -> t
