open Dmx_value

type token =
  | Tid of string
  | Tint of int64
  | Tfloat of float
  | Tstring of string
  | Tparam of int
  | Top of string
  | Tlparen
  | Trparen
  | Tcomma
  | Teof

exception Parse_error of string

let err fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_ident c = is_ident_start c || is_digit c || c = '.' in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      if !i < n && src.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit src.[!i] do incr i done;
        emit (Tfloat (float_of_string (String.sub src start (!i - start))))
      end
      else emit (Tint (Int64.of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do incr i done;
      emit (Tid (String.sub src start (!i - start)))
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec loop () =
        if !i >= n then err "unterminated string literal"
        else if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2;
            loop ()
          end
          else incr i
        else begin
          Buffer.add_char buf src.[!i];
          incr i;
          loop ()
        end
      in
      loop ();
      emit (Tstring (Buffer.contents buf))
    end
    else if c = '?' then begin
      incr i;
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      if !i = start then err "expected digits after ?"
      else emit (Tparam (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '(' then (incr i; emit Tlparen)
    else if c = ')' then (incr i; emit Trparen)
    else if c = ',' then (incr i; emit Tcomma)
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
        i := !i + 2;
        emit (Top two)
      | _ -> begin
        match c with
        | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '%' ->
          incr i;
          emit (Top (String.make 1 c))
        | _ -> err "unexpected character %C" c
      end
    end
  done;
  List.rev (Teof :: !toks)

type state = { mutable toks : token list; schema : Schema.t }

let peek st = match st.toks with [] -> Teof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t what =
  if peek st = t then advance st else err "expected %s" what

let kw st = match peek st with Tid s -> Some (String.uppercase_ascii s) | _ -> None

let eat_kw st k =
  if kw st = Some k then begin
    advance st;
    true
  end
  else false

let require_kw st k = if not (eat_kw st k) then err "expected %s" k

let rec parse_or st =
  let lhs = parse_and st in
  if eat_kw st "OR" then Expr.Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_unary st in
  if eat_kw st "AND" then Expr.And (lhs, parse_and st) else lhs

and parse_unary st =
  if eat_kw st "NOT" then Expr.Not (parse_unary st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Top "=" ->
    advance st;
    Expr.Cmp (Eq, lhs, parse_add st)
  | Top ("<>" | "!=") ->
    advance st;
    Expr.Cmp (Ne, lhs, parse_add st)
  | Top "<" ->
    advance st;
    Expr.Cmp (Lt, lhs, parse_add st)
  | Top "<=" ->
    advance st;
    Expr.Cmp (Le, lhs, parse_add st)
  | Top ">" ->
    advance st;
    Expr.Cmp (Gt, lhs, parse_add st)
  | Top ">=" ->
    advance st;
    Expr.Cmp (Ge, lhs, parse_add st)
  | Tid _ -> begin
    match kw st with
    | Some "IS" ->
      advance st;
      let negated = eat_kw st "NOT" in
      require_kw st "NULL";
      if negated then Expr.Not (Expr.Is_null lhs) else Expr.Is_null lhs
    | Some "LIKE" ->
      advance st;
      begin
        match peek st with
        | Tstring p ->
          advance st;
          Expr.Like (lhs, p)
        | _ -> err "LIKE expects a string literal"
      end
    | Some "NOT" ->
      advance st;
      if eat_kw st "LIKE" then begin
        match peek st with
        | Tstring p ->
          advance st;
          Expr.Not (Expr.Like (lhs, p))
        | _ -> err "LIKE expects a string literal"
      end
      else if eat_kw st "IN" then Expr.Not (parse_in st lhs)
      else err "expected LIKE or IN after NOT"
    | Some "IN" ->
      advance st;
      parse_in st lhs
    | Some "BETWEEN" ->
      advance st;
      let lo = parse_add st in
      require_kw st "AND";
      let hi = parse_add st in
      Expr.Between (lhs, lo, hi)
    | _ -> lhs
  end
  | _ -> lhs

and parse_in st lhs =
  expect st Tlparen "(";
  let rec items acc =
    let v =
      match peek st with
      | Tint i ->
        advance st;
        Value.Int i
      | Tfloat f ->
        advance st;
        Value.Float f
      | Tstring s ->
        advance st;
        Value.String s
      | Tid s when String.uppercase_ascii s = "NULL" ->
        advance st;
        Value.Null
      | Tid s when String.uppercase_ascii s = "TRUE" ->
        advance st;
        Value.Bool true
      | Tid s when String.uppercase_ascii s = "FALSE" ->
        advance st;
        Value.Bool false
      | Top "-" ->
        advance st;
        begin
          match peek st with
          | Tint i ->
            advance st;
            Value.Int (Int64.neg i)
          | Tfloat f ->
            advance st;
            Value.Float (-.f)
          | _ -> err "expected number after -"
        end
      | _ -> err "IN list expects literals"
    in
    if peek st = Tcomma then begin
      advance st;
      items (v :: acc)
    end
    else List.rev (v :: acc)
  in
  let vs = items [] in
  expect st Trparen ")";
  Expr.In_list (lhs, vs)

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Top "+" ->
      advance st;
      loop (Expr.Arith (Add, lhs, parse_mul st))
    | Top "-" ->
      advance st;
      loop (Expr.Arith (Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Top "*" ->
      advance st;
      loop (Expr.Arith (Mul, lhs, parse_atom st))
    | Top "/" ->
      advance st;
      loop (Expr.Arith (Div, lhs, parse_atom st))
    | Top "%" ->
      advance st;
      loop (Expr.Arith (Mod, lhs, parse_atom st))
    | _ -> lhs
  in
  loop (parse_atom st)

and parse_atom st =
  match peek st with
  | Tint i ->
    advance st;
    Expr.Const (Value.Int i)
  | Tfloat f ->
    advance st;
    Expr.Const (Value.Float f)
  | Tstring s ->
    advance st;
    Expr.Const (Value.String s)
  | Tparam i ->
    advance st;
    Expr.Param i
  | Top "-" ->
    advance st;
    Expr.Neg (parse_atom st)
  | Tlparen ->
    advance st;
    let e = parse_or st in
    expect st Trparen ")";
    e
  | Tid name -> begin
    advance st;
    match String.uppercase_ascii name with
    | "NULL" -> Expr.Const Value.Null
    | "TRUE" -> Expr.Const (Value.Bool true)
    | "FALSE" -> Expr.Const (Value.Bool false)
    | _ ->
      if peek st = Tlparen then begin
        advance st;
        let rec args acc =
          if peek st = Trparen then List.rev acc
          else
            let a = parse_or st in
            if peek st = Tcomma then begin
              advance st;
              args (a :: acc)
            end
            else List.rev (a :: acc)
        in
        let args = args [] in
        expect st Trparen ")";
        Expr.Call (name, args)
      end
      else begin
        match Schema.field_index st.schema name with
        | Some i -> Expr.Field i
        | None -> err "unknown column %S" name
      end
  end
  | Trparen | Tcomma | Teof | Top _ -> err "unexpected token"

let parse schema src =
  match
    let st = { toks = tokenize src; schema } in
    let e = parse_or st in
    if peek st <> Teof then err "trailing input" else e
  with
  | e -> Ok e
  | exception Parse_error msg -> Error msg

let parse_exn schema src =
  match parse schema src with
  | Ok e -> e
  | Error msg -> invalid_arg ("Parse.parse_exn: " ^ msg)
