(** Eligible-predicate analysis.

    The query planner hands storage methods and access-path attachments a list
    of "eligible predicates"; each extension determines the *relevance* of
    those predicates to itself and estimates the cost of returning qualifying
    records (paper p. 223). This module provides the shared machinery:
    conjunct extraction, search-argument (sarg) recognition, key-prefix
    matching and selectivity heuristics. *)

open Dmx_value

val conjuncts : Expr.t -> Expr.t list
(** Flatten top-level [And]s into a conjunct list. *)

val conjoin : Expr.t list -> Expr.t option
(** Inverse of {!conjuncts}; [None] for the empty list. *)

val const_value : ?params:Value.t array -> Expr.t -> Value.t option
(** Evaluate an expression that references no record fields. [Param]s resolve
    only when [params] is given (execution time); at planning time they are
    treated as opaque-but-bindable. *)

type bound = Incl of Value.t | Excl of Value.t | Unbounded
type range = { lo : bound; hi : bound }

val full_range : range
val range_contains : range -> Value.t -> bool

(** A search argument extracted from one conjunct. *)
type sarg =
  | Eq of int * Expr.t  (** field = value-expression (no field refs on rhs) *)
  | Cmp_range of int * Expr.cmp * Expr.t  (** field <op> value-expression *)
  | Encloses of int array * Expr.t array
      (** [encloses(q0..q3, $f0..$f3)]: query-rectangle expressions and the
          four record fields holding the data rectangle *)

val sarg_of_conjunct : Expr.t -> sarg option
(** Recognise [Field op const-expr] (either orientation), [Between] and the
    spatial [encloses] call. Returns [None] for non-sargable conjuncts. *)

val sargs : Expr.t -> sarg list

type key_match = {
  eq_prefix : int;  (** leading key fields bound by equality *)
  range_on_next : (Expr.cmp * Expr.t) list;
      (** range bounds on key field [eq_prefix], if any *)
  matched : Expr.t list;  (** conjuncts consumed by the match *)
  residual : Expr.t list;  (** conjuncts the caller must still evaluate *)
}

val match_key : key_fields:int array -> Expr.t -> key_match
(** How well a predicate matches a composed key over [key_fields]: the longest
    equality-bound prefix plus any range bounds on the next key field. Used by
    B-tree-style access paths (and key-organised storage methods) to report
    relevance and to derive scan ranges. *)

val key_range :
  ?params:Value.t array -> key_fields:int array -> Expr.t ->
  (Value.t array * range) option
(** Concrete scan bounds from {!match_key} once parameter values are known:
    the equality prefix values and the range on the next field. [None] when
    the predicate gives no bound at all. *)

val selectivity : Expr.t -> float
(** Heuristic fraction of records satisfying the predicate (System-R style
    magic numbers: 0.05 for equality, 0.3 for ranges, ...). *)
