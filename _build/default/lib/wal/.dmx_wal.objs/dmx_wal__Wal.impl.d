lib/wal/wal.ml: Array Bytes Char Codec Dmx_value Fmt Hashtbl Int32 Int64 List Log_record Option String Unix
