lib/wal/log_record.mli: Dmx_value Format
