lib/wal/recovery.ml: Fmt Int Int64 List Log_record Set Wal
