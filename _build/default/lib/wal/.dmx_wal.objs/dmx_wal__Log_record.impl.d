lib/wal/log_record.ml: Codec Dmx_value Fmt String
