lib/wal/recovery.mli: Format Log_record Wal
