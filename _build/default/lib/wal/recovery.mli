(** Restart-recovery analysis.

    Scans the log and classifies transactions into winners (Commit record
    present) and losers. For each loser it computes the [Ext] records still
    needing undo — records already compensated by a [Clr] (a crash during an
    earlier rollback) are excluded. The caller (the extension architecture's
    undo driver) dispatches each record to the owning extension's undo entry
    point, newest first, then logs the terminal [Abort]. *)

type analysis = {
  winners : Log_record.txid list;
  losers : Log_record.txid list;
  undo_work : (Log_record.txid * Log_record.t list) list;
      (** per loser, Ext records newest-first *)
}

val analyze : Wal.t -> analysis

val pp : Format.formatter -> analysis -> unit
