type analysis = {
  winners : Log_record.txid list;
  losers : Log_record.txid list;
  undo_work : (Log_record.txid * Log_record.t list) list;
}

module Iset = Set.Make (Int)
module I64set = Set.Make (Int64)

let analyze wal =
  let started = ref Iset.empty in
  let finished = ref Iset.empty in
  let winners = ref Iset.empty in
  let compensated = ref I64set.empty in
  Wal.iter wal (fun r ->
      match r.Log_record.kind with
      | Begin -> started := Iset.add r.txid !started
      | Commit ->
        finished := Iset.add r.txid !finished;
        winners := Iset.add r.txid !winners
      | Abort -> finished := Iset.add r.txid !finished
      | Clr { undone } -> compensated := I64set.add undone !compensated
      | Savepoint _ | Ext _ -> started := Iset.add r.txid !started);
  let losers = Iset.diff !started !finished in
  let undo_work =
    Iset.fold
      (fun txid acc ->
        let work =
          Wal.records_of_txn wal txid
          |> List.filter (fun (r : Log_record.t) ->
                 match r.kind with
                 | Ext _ -> not (I64set.mem r.lsn !compensated)
                 | Begin | Commit | Abort | Savepoint _ | Clr _ -> false)
        in
        (txid, work) :: acc)
      losers []
  in
  {
    winners = Iset.elements !winners;
    losers = Iset.elements losers;
    undo_work;
  }

let pp ppf a =
  Fmt.pf ppf "winners=[%a] losers=[%a] undo=%d records"
    Fmt.(list ~sep:(any ",") int)
    a.winners
    Fmt.(list ~sep:(any ",") int)
    a.losers
    (List.fold_left (fun n (_, rs) -> n + List.length rs) 0 a.undo_work)
