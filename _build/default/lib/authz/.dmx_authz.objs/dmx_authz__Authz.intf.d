lib/authz/authz.mli: Dmx_core
