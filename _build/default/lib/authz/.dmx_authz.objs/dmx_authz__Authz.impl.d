lib/authz/authz.ml: Codec Dmx_core Dmx_value Fmt Hashtbl List String Sys
