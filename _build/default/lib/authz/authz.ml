open Dmx_value
module Error = Dmx_core.Error

type priv = Select | Insert | Update | Delete | Control

let priv_to_string = function
  | Select -> "SELECT"
  | Insert -> "INSERT"
  | Update -> "UPDATE"
  | Delete -> "DELETE"
  | Control -> "CONTROL"

let all_privs = [ Select; Insert; Update; Delete; Control ]

let priv_tag = function
  | Select -> 0
  | Insert -> 1
  | Update -> 2
  | Delete -> 3
  | Control -> 4

let priv_of_tag = function
  | 0 -> Select
  | 1 -> Insert
  | 2 -> Update
  | 3 -> Delete
  | 4 -> Control
  | n -> failwith (Fmt.str "Authz: bad privilege tag %d" n)

type t = {
  grants : (string * int, priv list ref) Hashtbl.t;  (* (user, rel) *)
  mutable admins : string list;
  path : string option;
}

let create ?path () = { grants = Hashtbl.create 32; admins = []; path }

let canon = String.lowercase_ascii

let add_admin t user =
  if not (List.mem (canon user) t.admins) then
    t.admins <- canon user :: t.admins

let is_admin t user = List.mem (canon user) t.admins

let cell t user rel_id =
  let key = (canon user, rel_id) in
  match Hashtbl.find_opt t.grants key with
  | Some c -> c
  | None ->
    let c = ref [] in
    Hashtbl.replace t.grants key c;
    c

let privileges t ~user ~rel_id =
  match Hashtbl.find_opt t.grants (canon user, rel_id) with
  | Some c -> !c
  | None -> []

let holds t user priv rel_id = List.mem priv (privileges t ~user ~rel_id)

let grant_all t ~user ~rel_id =
  let c = cell t user rel_id in
  c := all_privs

let require_control t granter rel_id =
  if is_admin t granter || holds t granter Control rel_id then Ok ()
  else
    Error
      (Error.Authorization_denied
         (Fmt.str "%s lacks CONTROL on relation %d" granter rel_id))

let grant t ~granter ~user ~privs ~rel_id =
  match require_control t granter rel_id with
  | Error _ as e -> e
  | Ok () ->
    let c = cell t user rel_id in
    c := List.sort_uniq compare (privs @ !c);
    Ok ()

let revoke t ~granter ~user ~privs ~rel_id =
  match require_control t granter rel_id with
  | Error _ as e -> e
  | Ok () ->
    let c = cell t user rel_id in
    c := List.filter (fun p -> not (List.mem p privs)) !c;
    Ok ()

let check t ~user ~priv ~rel_id =
  if is_admin t user || holds t user priv rel_id then Ok ()
  else
    Error
      (Error.Authorization_denied
         (Fmt.str "%s lacks %s on relation %d" user (priv_to_string priv)
            rel_id))

let drop_relation t ~rel_id =
  let stale =
    Hashtbl.fold
      (fun ((_, r) as key) _ acc -> if r = rel_id then key :: acc else acc)
      t.grants []
  in
  List.iter (Hashtbl.remove t.grants) stale

let save t =
  match t.path with
  | None -> ()
  | Some path ->
    let e = Codec.Enc.create () in
    Codec.Enc.list e Codec.Enc.string t.admins;
    let entries =
      Hashtbl.fold (fun (u, r) c acc -> (u, r, !c) :: acc) t.grants []
    in
    Codec.Enc.list e
      (fun e (u, r, privs) ->
        Codec.Enc.string e u;
        Codec.Enc.varint e r;
        Codec.Enc.list e (fun e p -> Codec.Enc.byte e (priv_tag p)) privs)
      entries;
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (Codec.Enc.to_string e);
    close_out oc;
    Sys.rename tmp path

let load ~path =
  if not (Sys.file_exists path) then create ~path ()
  else begin
    let ic = open_in_bin path in
    let data = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let d = Codec.Dec.of_string data in
    let t = create ~path () in
    t.admins <- Codec.Dec.list d Codec.Dec.string;
    List.iter
      (fun (u, r, privs) -> Hashtbl.replace t.grants (u, r) (ref privs))
      (Codec.Dec.list d (fun d ->
           let u = Codec.Dec.string d in
           let r = Codec.Dec.varint d in
           let privs =
             Codec.Dec.list d (fun d -> priv_of_tag (Codec.Dec.byte d))
           in
           (u, r, privs)));
    t
  end
