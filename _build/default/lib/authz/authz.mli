(** Uniform authorization.

    "Because extensions are alternative implementations of a common relation
    abstraction, a uniform authorization facility can be used to control user
    access to relations of all storage methods" (paper p. 224). Privileges
    attach to relation ids, never to storage specifics; the facade checks them
    before dispatching to any extension.

    The creator of a relation receives every privilege including [Control];
    [Control] (or admin) is required to grant, revoke or drop. *)

type priv = Select | Insert | Update | Delete | Control

type t

val create : ?path:string -> unit -> t
val load : path:string -> t
val save : t -> unit

val add_admin : t -> string -> unit
val is_admin : t -> string -> bool

val grant_all : t -> user:string -> rel_id:int -> unit
(** Used at relation creation for the owner. *)

val grant :
  t -> granter:string -> user:string -> privs:priv list -> rel_id:int ->
  (unit, Dmx_core.Error.t) result

val revoke :
  t -> granter:string -> user:string -> privs:priv list -> rel_id:int ->
  (unit, Dmx_core.Error.t) result

val check :
  t -> user:string -> priv:priv -> rel_id:int -> (unit, Dmx_core.Error.t) result

val drop_relation : t -> rel_id:int -> unit
(** Forget all grants on a dropped relation. *)

val privileges : t -> user:string -> rel_id:int -> priv list
val priv_to_string : priv -> string
