(** System-wide deadlock detection.

    Cycle search over the waits-for graph assembled from the common lock table
    plus any extension-supplied lock controllers. The victim is the youngest
    transaction in the first cycle found (largest txid — ids are assigned in
    start order). *)

type txid = int

val find_cycle : (txid * txid) list -> txid list option
(** A cycle as the list of transactions in it, if any. *)

val detect : Lock_table.t -> txid option
(** Run detection over {!Lock_table.all_edges}; returns the chosen victim. *)

val choose_victim : txid list -> txid
