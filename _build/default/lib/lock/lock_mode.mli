(** Hierarchical lock modes.

    The architecture assumes every storage method and attachment uses
    locking-based concurrency control (paper p. 223); the common lock manager
    offers the standard multi-granularity mode lattice. *)

type t = IS | IX | S | SIX | X

val compatible : t -> t -> bool
(** Symmetric compatibility matrix. *)

val sup : t -> t -> t
(** Least upper bound in the lattice — the mode to hold after an upgrade. *)

val leq : t -> t -> bool
(** [leq a b]: holding [b] covers a request for [a]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
