type t = IS | IX | S | SIX | X

let compatible a b =
  match a, b with
  | IS, (IS | IX | S | SIX) | (IX | S | SIX), IS -> true
  | IX, IX -> true
  | S, S -> true
  | _ -> false

(* Lattice:      X
               /   \
             SIX    |
            /   \   |
           S     IX |
            \   /   |
             IS ----+
   sup is the least mode covering both. *)
let sup a b =
  if a = b then a
  else
    match a, b with
    | X, _ | _, X -> X
    | SIX, _ | _, SIX -> SIX
    | S, IX | IX, S -> SIX
    | S, IS | IS, S -> S
    | IX, IS | IS, IX -> IX
    | IS, IS | S, S | IX, IX -> a

let leq a b = sup a b = b

let to_string = function
  | IS -> "IS"
  | IX -> "IX"
  | S -> "S"
  | SIX -> "SIX"
  | X -> "X"

let pp ppf t = Fmt.string ppf (to_string t)
