lib/lock/lock_table.ml: Fmt Hashtbl List Lock_mode String
