lib/lock/deadlock.mli: Lock_table
