lib/lock/lock_table.mli: Format Lock_mode
