lib/lock/lock_mode.ml: Fmt
