lib/lock/deadlock.ml: Hashtbl Int List Lock_table Map Option
