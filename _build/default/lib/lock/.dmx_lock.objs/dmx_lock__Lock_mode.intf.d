lib/lock/lock_mode.mli: Format
