lib/db/db.mli: Ctx Dmx_authz Dmx_catalog Dmx_core Dmx_query Dmx_value Error Record Record_key Schema Services Value
