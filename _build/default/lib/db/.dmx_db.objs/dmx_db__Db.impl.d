lib/db/db.ml: Dmx_attach Dmx_authz Dmx_catalog Dmx_core Dmx_ddl Dmx_query Dmx_smethod Error Filename Relation Result Services
