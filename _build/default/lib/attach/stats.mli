(** Statistics-maintenance attachment.

    The paper notes attachments "may have associated storage [which] can be
    used ... to maintain statistics about relations or precomputed function
    values" (p. 222). An instance tracks, for the declared numeric [fields]:
    live record count, per-field sum, null count, and widening min/max.
    Sums/counts are exact (deltas are logged and undone); min/max only widen
    on insert and are therefore conservative estimates after deletes, which is
    what optimizer statistics are. *)

open Dmx_value

include Dmx_core.Intf.ATTACHMENT

val register : unit -> int
val id : unit -> int

type field_stats = {
  field : int;
  sum : int64;
  nulls : int;
  min_seen : Value.t;  (** [Null] until a value is seen *)
  max_seen : Value.t;
}

type stats = { live_count : int; per_field : field_stats list }

val get :
  Dmx_core.Ctx.t -> Dmx_catalog.Descriptor.t -> name:string -> stats option
