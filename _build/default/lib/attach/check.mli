(** Intra-record (CHECK) integrity constraint attachment.

    The paper's "simple integrity constraint extension descriptor would
    contain a (Common Service) encoding of the predicate to be tested when
    records of the relation are inserted or updated" (p. 225). Instances are
    declared with the [predicate] DDL attribute (parsed against the relation
    schema) and evaluated by the common predicate service; a record for which
    the predicate is FALSE vetoes the modification (UNKNOWN passes, per SQL).
    With [deferred=true] the check runs from the deferred-action queue before
    the transaction enters the prepared state, against the records as of
    commit. *)

include Dmx_core.Intf.ATTACHMENT

val register : unit -> int
val id : unit -> int
