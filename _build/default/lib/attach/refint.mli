(** Referential-integrity attachment.

    The paper's multi-relation example (p. 223): "the referential integrity
    attachment to a 'parent' relation would perform record delete operations
    on the 'child' relation when a 'parent' record is deleted. If the 'child'
    relation also has a referential integrity attachment, it would perform
    record delete operations on its 'child' relation. Thus, cascaded deletes
    can be supported. On insert, the same attachment type on the 'child'
    relation would test the 'parent' relation for a record with matching
    referential integrity fields."

    One DDL call on the *child* relation (attributes [fields], [parent],
    [parent_fields], [on_delete=restrict|cascade], [deferred]) installs a
    child-role instance there and a parent-role instance on the parent — the
    descriptor embeds "references to descriptors for other relations" (p. 225).
    Child-side checks may be deferred to the pre-prepare queue. All-NULL
    foreign keys pass (SQL MATCH SIMPLE). *)

include Dmx_core.Intf.ATTACHMENT

val register : unit -> int
val id : unit -> int
