(** Join-index attachment (Valduriez, cited at paper p. 223: "Access paths
    need not be limited to a single table (e.g., join indexes)").

    A join index between relations R and S on R.f = S.g precomputes the set
    of matching (r record key, s record key) pairs in two shared B-trees (one
    per traversal direction). Declared with one DDL call on R (attributes
    [field], [other], [other_field]); a mirror instance is installed on S so
    modifications to either side maintain the pairs — both installations are
    logged, undoable catalog changes. *)

open Dmx_value

include Dmx_core.Intf.ATTACHMENT

val register : unit -> int
val id : unit -> int

val pairs :
  Dmx_core.Ctx.t -> Dmx_catalog.Descriptor.t -> name:string ->
  (Record_key.t * Record_key.t) list
(** All (this-relation key, other-relation key) pairs of the named join index,
    as seen from the relation [desc] (pairs are oriented from it). *)

val pairs_for :
  Dmx_core.Ctx.t -> Dmx_catalog.Descriptor.t -> name:string ->
  Record_key.t -> Record_key.t list
(** Join partners of one record. *)

val find_instance :
  Dmx_catalog.Descriptor.t -> my_field:int -> other_rel:int ->
  other_field:int -> int option
(** Planner support: the instance number of a join index over exactly this
    equi-join, if one exists on the relation. *)

val pairs_of_instance :
  Dmx_core.Ctx.t -> Dmx_catalog.Descriptor.t -> instance:int ->
  (Record_key.t * Record_key.t) list

val pair_count :
  Dmx_core.Ctx.t -> Dmx_catalog.Descriptor.t -> instance:int -> int
