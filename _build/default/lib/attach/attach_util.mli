(** Shared helpers for attachment implementations.

    A descriptor slot holds *all* instances of one attachment type on a
    relation; this module provides the common instance-list encoding (each
    instance: small-integer instance number + name + type-specific payload)
    and scan/lookup plumbing shared by the access-path attachments. *)

open Dmx_value
open Dmx_core

type 'a instances = (int * string * 'a) list
(** (instance number, instance name, payload), ascending instance number. *)

val enc_instances : (Codec.Enc.t -> 'a -> unit) -> 'a instances -> string
val dec_instances : (Codec.Dec.t -> 'a) -> string -> 'a instances
val next_instance_no : 'a instances -> int
val find_by_name : 'a instances -> string -> (int * 'a) option
val find_by_no : 'a instances -> int -> 'a option
val remove_by_name : 'a instances -> string -> 'a instances

val parse_fields :
  Schema.t -> string -> (int array, string) result
(** Parse a comma-separated field-name list against a schema. *)

val scan_relation :
  Ctx.t -> Dmx_catalog.Descriptor.t ->
  (Record_key.t -> Record.t -> unit) -> unit
(** Iterate every record of a relation through its storage method — used when
    building a new access path from existing records. *)

val encode_reckey_value : Record_key.t -> Value.t
(** Record keys embedded in index entries, as an order-stable string value. *)

val decode_reckey_value : Value.t -> Record_key.t
