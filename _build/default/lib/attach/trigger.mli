(** Trigger attachment.

    "Any attachment can ... trigger actions both inside and outside the
    database in addition to providing alternative means of accessing data"
    (paper p. 222). Trigger functions are OCaml procedures registered at the
    factory under a name ({!register_function}); instances bind a function to
    a relation for a set of events (DDL attributes [function] and
    [events=insert,update,delete]). A trigger may veto by returning an error,
    and may modify other relations through {!Dmx_core.Relation} — such
    modifications cascade and are undone by the common log on veto/abort. *)

open Dmx_value

type event = On_insert | On_update | On_delete

type fire = {
  fire_event : event;
  fire_relation : Dmx_catalog.Descriptor.t;
  fire_old : Record.t option;  (** delete/update *)
  fire_new : Record.t option;  (** insert/update *)
  fire_key : Record_key.t;
}

type func = Dmx_core.Ctx.t -> fire -> (unit, Dmx_core.Error.t) result

val register_function : string -> func -> unit
(** Raises [Invalid_argument] on duplicates. Factory-time, like all extension
    binding. *)

val function_names : unit -> string list

include Dmx_core.Intf.ATTACHMENT

val register : unit -> int
val id : unit -> int
