open Dmx_value
open Dmx_core

type 'a instances = (int * string * 'a) list

let enc_instances enc_payload insts =
  let e = Codec.Enc.create () in
  Codec.Enc.list e
    (fun e (no, name, payload) ->
      Codec.Enc.varint e no;
      Codec.Enc.string e name;
      enc_payload e payload)
    insts;
  Codec.Enc.to_string e

let dec_instances dec_payload s =
  let d = Codec.Dec.of_string s in
  Codec.Dec.list d (fun d ->
      let no = Codec.Dec.varint d in
      let name = Codec.Dec.string d in
      let payload = dec_payload d in
      (no, name, payload))

let next_instance_no insts =
  1 + List.fold_left (fun m (no, _, _) -> max m no) 0 insts

let find_by_name insts name =
  List.find_map
    (fun (no, n, p) ->
      if String.lowercase_ascii n = String.lowercase_ascii name then
        Some (no, p)
      else None)
    insts

let find_by_no insts no =
  List.find_map (fun (n, _, p) -> if n = no then Some p else None) insts

let remove_by_name insts name =
  List.filter
    (fun (_, n, _) ->
      String.lowercase_ascii n <> String.lowercase_ascii name)
    insts

let parse_fields schema spec =
  let names = String.split_on_char ',' spec |> List.map String.trim in
  let rec loop acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | n :: rest -> begin
      match Schema.field_index schema n with
      | Some i ->
        if List.mem i acc then Error (Fmt.str "duplicate field %S" n)
        else loop (i :: acc) rest
      | None -> Error (Fmt.str "unknown field %S" n)
    end
  in
  if names = [] || names = [ "" ] then Error "empty field list"
  else loop [] names

let scan_relation ctx (desc : Dmx_catalog.Descriptor.t) f =
  let (module M : Intf.STORAGE_METHOD) =
    Registry.storage_method desc.smethod_id
  in
  let scan = M.scan ctx desc () in
  let rec loop () =
    match scan.Intf.rs_next () with
    | None -> scan.Intf.rs_close ()
    | Some (key, record) ->
      f key record;
      loop ()
  in
  loop ()

let encode_reckey_value key =
  Value.String (Bytes.to_string (Record_key.encode key))

let decode_reckey_value = function
  | Value.String s -> Record_key.decode (Bytes.of_string s)
  | v -> failwith (Fmt.str "not an encoded record key: %a" Value.pp v)
