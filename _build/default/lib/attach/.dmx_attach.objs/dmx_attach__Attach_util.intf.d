lib/attach/attach_util.mli: Codec Ctx Dmx_catalog Dmx_core Dmx_value Record Record_key Schema Value
