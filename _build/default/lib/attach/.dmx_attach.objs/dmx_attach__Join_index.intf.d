lib/attach/join_index.mli: Dmx_catalog Dmx_core Dmx_value Record_key
