lib/attach/rtree_index.mli: Dmx_catalog Dmx_core Dmx_rtree Dmx_value
