lib/attach/hash_index.mli: Dmx_core
