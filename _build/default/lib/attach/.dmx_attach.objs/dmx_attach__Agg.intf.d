lib/attach/agg.mli: Dmx_catalog Dmx_core Dmx_value Value
