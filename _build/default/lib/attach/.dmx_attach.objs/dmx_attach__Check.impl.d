lib/attach/check.ml: Attach_util Bytes Ctx Dmx_catalog Dmx_core Dmx_expr Dmx_txn Dmx_value Error Fmt Intf Option Registry Result
