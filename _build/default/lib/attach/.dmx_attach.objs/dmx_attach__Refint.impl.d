lib/attach/refint.ml: Array Attach_util Codec Ctx Dmx_catalog Dmx_core Dmx_expr Dmx_txn Dmx_value Dmx_wal Error Fmt Intf List Option Record Registry Relation Result Scan_help String Value
