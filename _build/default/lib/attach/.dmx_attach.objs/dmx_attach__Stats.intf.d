lib/attach/stats.mli: Dmx_catalog Dmx_core Dmx_value Value
