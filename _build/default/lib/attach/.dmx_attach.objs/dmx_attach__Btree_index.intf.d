lib/attach/btree_index.mli: Dmx_catalog Dmx_core
