lib/attach/rtree_index.ml: Array Attach_util Bytes Codec Cost Ctx Dmx_catalog Dmx_core Dmx_expr Dmx_rtree Dmx_value Dmx_wal Error Float Fmt Intf List Option Record_key Registry Result Value
