lib/attach/refint.mli: Dmx_core
