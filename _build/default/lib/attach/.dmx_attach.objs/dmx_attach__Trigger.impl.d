lib/attach/trigger.ml: Attach_util Codec Ctx Dmx_catalog Dmx_core Dmx_value Error Fmt Hashtbl Intf List Option Record Record_key Registry Result String
