lib/attach/check.mli: Dmx_core
