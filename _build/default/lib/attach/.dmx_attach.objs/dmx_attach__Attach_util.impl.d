lib/attach/attach_util.ml: Array Bytes Codec Dmx_catalog Dmx_core Dmx_value Fmt Intf List Record_key Registry Schema String Value
