lib/attach/trigger.mli: Dmx_catalog Dmx_core Dmx_value Record Record_key
