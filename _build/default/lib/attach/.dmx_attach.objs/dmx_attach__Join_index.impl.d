lib/attach/join_index.ml: Array Attach_util Bytes Codec Ctx Dmx_btree Dmx_catalog Dmx_core Dmx_expr Dmx_value Dmx_wal Error Fmt Intf List Option Record_key Registry Result Scan_help Value
