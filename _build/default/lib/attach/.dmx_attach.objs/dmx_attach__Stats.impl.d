lib/attach/stats.ml: Array Attach_util Buffer_pool Bytes Codec Ctx Dmx_catalog Dmx_core Dmx_page Dmx_value Dmx_wal Error Fmt Int64 Intf List Option Registry Result String Value
