lib/attach/agg.ml: Array Attach_util Codec Ctx Dmx_btree Dmx_catalog Dmx_core Dmx_value Dmx_wal Error Fmt Int64 Intf List Option Record Registry Result Value
