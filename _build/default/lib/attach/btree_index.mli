(** B-tree index attachment.

    The paper's running example (p. 223): "After a record is inserted into a
    relation having B-tree indexes defined on it, the B-tree attached
    procedure for insert will be invoked ... For each B-tree index defined on
    the relation being modified, the B-tree insert procedure will form an
    index key by projecting fields from the inserted record, and then insert
    the index key plus tuple identifier or record key into the B-tree index."

    Instances are declared with DDL attributes [fields] (comma-separated
    column list) and optional [unique]; a unique instance vetoes modifications
    that would duplicate an index key. Update detects untouched index fields
    and skips the instance. Index entries map (field values, record key) to
    the record key, so non-unique duplicates coexist. *)

include Dmx_core.Intf.ATTACHMENT

val register : unit -> int
val id : unit -> int

val instance_names : Dmx_catalog.Descriptor.t -> string list
val instance_number :
  Dmx_catalog.Descriptor.t -> name:string -> int option
(** Resolve an index name to its instance number ("B-tree number 3"). *)
