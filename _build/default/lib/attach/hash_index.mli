(** Hash-table access path attachment.

    Static hashing with page-chained buckets ([buckets] DDL attribute, default
    16). Maps exact keys over the declared [fields] to record keys in ~1 page
    access; offers no key-sequential access (the architecture makes scans
    optional for access paths), so the planner only considers it for full
    equality matches. Optional [unique]. *)

include Dmx_core.Intf.ATTACHMENT

val register : unit -> int
val id : unit -> int
