(** R-tree spatial access path attachment (Guttman, cited by the paper as the
    motivating spatial extension).

    Instances declare four rectangle columns via the [rect] DDL attribute
    ([rect=xlo,ylo,xhi,yhi], float or int columns). The cost estimator
    recognises the ENCLOSES predicate — [encloses(qxlo,qylo,qxhi,qyhi, $xlo,
    $ylo, $xhi, $yhi)] over exactly its rectangle columns — "and report[s] a
    low cost" (paper p. 223). [lookup] interprets the input key as a query
    rectangle and returns keys of records whose rectangle the query encloses. *)

include Dmx_core.Intf.ATTACHMENT

val register : unit -> int
val id : unit -> int

val lookup_overlapping :
  Dmx_core.Ctx.t -> Dmx_catalog.Descriptor.t -> instance:int ->
  Dmx_rtree.Rect.t -> Dmx_value.Record_key.t list
(** Extension-specific entry point: window (intersection) queries. *)
