(** Materialised-aggregation attachment.

    "Access paths need not be limited to a single table ... and can be used
    to maintain alternative representations or aggregations of the data
    stored in a relation" (paper p. 221). An instance maintains, per group
    (the [group] DDL attribute's fields), the live record count and the sum
    of the [sum] field — incrementally, as a side effect of every relation
    modification, with log-driven undo keeping it transactionally exact. *)

open Dmx_value

include Dmx_core.Intf.ATTACHMENT

val register : unit -> int
val id : unit -> int

type group = {
  group_values : Value.t array;
  count : int;
  sum : int64;
}

val groups :
  Dmx_core.Ctx.t -> Dmx_catalog.Descriptor.t -> name:string -> group list
(** All groups in group-key order. *)

val group :
  Dmx_core.Ctx.t -> Dmx_catalog.Descriptor.t -> name:string ->
  key:Value.t array -> group option
