lib/query/query.ml: Fmt String
