lib/query/planner.ml: Analyze Array Cost Ctx Dmx_attach Dmx_catalog Dmx_core Dmx_expr Dmx_value Error Expr Fmt Intf List Option Parse Plan Query Registry Result Schema
