lib/query/executor.ml: Analyze Array Dmx_attach Dmx_catalog Dmx_core Dmx_expr Dmx_value Error Eval Expr Intf List Option Plan Record Registry Relation Result Value
