lib/query/plan_cache.ml: Executor Hashtbl Plan Planner Query Result
