lib/query/plan.mli: Descriptor Dmx_catalog Dmx_core Dmx_expr Expr
