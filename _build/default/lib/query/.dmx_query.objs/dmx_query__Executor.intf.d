lib/query/executor.mli: Dmx_core Dmx_value Plan Record Value
