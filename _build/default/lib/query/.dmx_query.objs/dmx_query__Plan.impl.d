lib/query/plan.ml: Descriptor Dmx_catalog Dmx_core Dmx_expr Expr Fmt List
