lib/query/query.mli: Format
