lib/query/planner.mli: Dmx_core Plan Query
