lib/query/plan_cache.mli: Dmx_core Dmx_value Plan Query Record Value
