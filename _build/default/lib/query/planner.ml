open Dmx_value
open Dmx_expr
open Dmx_core
module Descriptor = Dmx_catalog.Descriptor
module Catalog = Dmx_catalog.Catalog

let ( let* ) = Result.bind

(* Random record fetches through the storage method after an access-path
   probe. Charged below one page read because consecutive fetches share
   buffer-pool residency. *)
let fetch_io_per_row = 0.3

(* Every access candidate for one relation and predicate. *)
let candidates ctx (desc : Descriptor.t) pred =
  let eligible = match pred with None -> [] | Some p -> Analyze.conjuncts p in
  let (module M : Intf.STORAGE_METHOD) =
    Registry.storage_method desc.smethod_id
  in
  let storage_est = M.estimate_scan ctx desc ~eligible in
  let storage_access =
    match M.key_fields desc, pred with
    | Some kf, Some p ->
      let m = Analyze.match_key ~key_fields:kf p in
      if m.eq_prefix > 0 || m.range_on_next <> [] then
        Plan.Keyed_storage { key_fields = kf }
      else Plan.Seq_scan
    | _ -> Plan.Seq_scan
  in
  let storage = (storage_access, storage_est) in
  let attach =
    List.concat_map
      (fun at_id ->
        match Descriptor.attachment_desc desc at_id with
        | None -> []
        | Some slot ->
          let (module A : Intf.ATTACHMENT) = Registry.attachment at_id in
          A.estimate ctx desc ~slot ~eligible
          |> List.map (fun (c : Intf.access_candidate) ->
                 let access =
                   match c.ac_spatial_rect with
                   | Some rect_exprs ->
                     Plan.Spatial { at_id; instance = c.ac_instance; rect_exprs }
                   | None -> begin
                     match c.ac_key_fields with
                     | None ->
                       Plan.Index_range
                         { at_id; instance = c.ac_instance; fields = [||] }
                     | Some fields ->
                       let full_eq =
                         match pred with
                         | None -> false
                         | Some p ->
                           let m = Analyze.match_key ~key_fields:fields p in
                           m.eq_prefix = Array.length fields
                           && m.range_on_next = []
                       in
                       if full_eq then
                         Plan.Index_eq { at_id; instance = c.ac_instance; fields }
                       else
                         Plan.Index_range
                           { at_id; instance = c.ac_instance; fields }
                   end
                 in
                 (* access paths return keys; charge the record fetches *)
                 let est = c.ac_estimate in
                 let est =
                   {
                     est with
                     Cost.cost =
                       Cost.add est.Cost.cost
                         (Cost.make
                            ~io:(est.Cost.est_rows *. fetch_io_per_row)
                            ~cpu:est.Cost.est_rows);
                   }
                 in
                 (access, est)))
      (Descriptor.attachment_types_present desc)
  in
  storage :: attach

let plan_single ctx (desc : Descriptor.t) pred : Plan.single =
  let cands = candidates ctx desc pred in
  let best =
    List.fold_left
      (fun best (access, est) ->
        match best with
        | Some (_, best_est)
          when Cost.compare best_est.Cost.cost est.Cost.cost <= 0 -> best
        | _ -> Some (access, est))
      None cands
  in
  let access, est = Option.get best in
  { Plan.desc; access; predicate = pred; est }

let resolve_field (schema : Schema.t) name =
  match Schema.field_index schema name with
  | Some i -> Ok i
  | None -> Error (Error.Schema_error (Fmt.str "unknown column %S" name))

let parse_pred schema = function
  | None -> Ok None
  | Some text -> begin
    match Parse.parse schema text with
    | Ok e -> Ok (Some e)
    | Error msg -> Error (Error.Schema_error ("bad predicate: " ^ msg))
  end

(* Projection positions over the output record: primary relation's columns
   first, joined relation's appended. *)
let resolve_projection (outer : Schema.t) (inner : Schema.t option) = function
  | None -> Ok None
  | Some cols ->
    let resolve name =
      match Schema.field_index outer name with
      | Some i -> Ok i
      | None -> begin
        match inner with
        | Some s -> begin
          match Schema.field_index s name with
          | Some i -> Ok (Schema.arity outer + i)
          | None -> Error (Error.Schema_error (Fmt.str "unknown column %S" name))
        end
        | None -> Error (Error.Schema_error (Fmt.str "unknown column %S" name))
      end
    in
    let rec loop acc = function
      | [] -> Ok (Some (Array.of_list (List.rev acc)))
      | c :: rest ->
        let* i = resolve c in
        loop (i :: acc) rest
    in
    loop [] cols

let find_rel ctx name =
  match Catalog.find ctx.Ctx.catalog name with
  | Some d -> Ok d
  | None -> Error (Error.No_such_relation name)

let translate ctx (q : Query.t) =
  let* outer_desc = find_rel ctx q.q_relation in
  let* pred = parse_pred outer_desc.Descriptor.schema q.q_predicate in
  match q.q_join with
  | None ->
    let single = plan_single ctx outer_desc pred in
    let* projection =
      resolve_projection outer_desc.Descriptor.schema None q.q_project
    in
    Ok
      {
        Plan.shape = Plan.Single single;
        projection;
        deps = [ (outer_desc.rel_id, outer_desc.version) ];
        out_arity = Schema.arity outer_desc.schema;
      }
  | Some j ->
    let* inner_desc = find_rel ctx j.j_relation in
    let* my_field = resolve_field outer_desc.schema j.j_my_field in
    let* other_field = resolve_field inner_desc.schema j.j_other_field in
    let outer = plan_single ctx outer_desc pred in
    (* Nested loop: inner side planned with the join value as a parameter. *)
    let join_param =
      1 + (match pred with None -> -1 | Some p -> Expr.max_param p)
    in
    let inner_pred =
      Expr.Cmp (Eq, Expr.Field other_field, Expr.Param join_param)
    in
    let inner = plan_single ctx inner_desc (Some inner_pred) in
    let nl_cost =
      Cost.add outer.est.Cost.cost
        (Cost.scale outer.est.Cost.est_rows inner.est.Cost.cost)
    in
    let ji =
      Option.map
        (fun instance ->
          let pairs =
            float_of_int
              (Dmx_attach.Join_index.pair_count ctx outer_desc ~instance)
          in
          let cost =
            Cost.make
              ~io:((pairs /. 32.) +. (2. *. pairs *. fetch_io_per_row))
              ~cpu:(4. *. pairs)
          in
          (instance, cost))
        (Dmx_attach.Join_index.find_instance outer_desc ~my_field
           ~other_rel:inner_desc.rel_id ~other_field)
    in
    let method_ =
      match ji with
      | Some (instance, ji_cost) when Cost.compare ji_cost nl_cost < 0 ->
        Plan.Via_join_index
          {
            at_id = Option.get (Registry.attachment_id "join_index");
            instance;
          }
      | _ -> Plan.Nested_loop { inner; join_param }
    in
    let* projection =
      resolve_projection outer_desc.schema (Some inner_desc.schema) q.q_project
    in
    Ok
      {
        Plan.shape =
          Plan.Join { outer; inner_desc; my_field; other_field; method_ };
        projection;
        deps =
          [
            (outer_desc.rel_id, outer_desc.version);
            (inner_desc.rel_id, inner_desc.version);
          ];
        out_arity = Schema.arity outer_desc.schema + Schema.arity inner_desc.schema;
      }

let candidate_report ctx (q : Query.t) =
  let* desc = find_rel ctx q.q_relation in
  let* pred = parse_pred desc.Descriptor.schema q.q_predicate in
  Ok
    (List.map
       (fun (access, est) ->
         Fmt.str "%s: %a"
           (match (access : Plan.access) with
           | Seq_scan -> "seq_scan"
           | Keyed_storage _ -> "keyed_storage"
           | Index_eq { at_id; instance; _ } ->
             Fmt.str "index_eq %s#%d" (Registry.attachment_name at_id) instance
           | Index_range { at_id; instance; _ } ->
             Fmt.str "index_range %s#%d" (Registry.attachment_name at_id)
               instance
           | Spatial { at_id; instance; _ } ->
             Fmt.str "spatial %s#%d" (Registry.attachment_name at_id) instance)
           Cost.pp_estimate est)
       (candidates ctx desc pred))
