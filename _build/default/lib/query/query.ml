type join = {
  j_relation : string;
  j_my_field : string;
  j_other_field : string;
}

type t = {
  q_relation : string;
  q_predicate : string option;
  q_project : string list option;
  q_join : join option;
}

let select ?where ?project q_relation =
  { q_relation; q_predicate = where; q_project = project; q_join = None }

let join ?where ?project q_relation ~on:(rel, my_field, other_field) =
  {
    q_relation;
    q_predicate = where;
    q_project = project;
    q_join =
      Some { j_relation = rel; j_my_field = my_field; j_other_field = other_field };
  }

let key t =
  Fmt.str "SELECT %s FROM %s%s%s"
    (match t.q_project with
    | None -> "*"
    | Some cols -> String.concat "," cols)
    t.q_relation
    (match t.q_join with
    | None -> ""
    | Some j ->
      Fmt.str " JOIN %s ON %s=%s" j.j_relation j.j_my_field j.j_other_field)
    (match t.q_predicate with None -> "" | Some p -> " WHERE " ^ p)

let pp ppf t = Fmt.string ppf (key t)
