(** Query statements.

    A deliberately small select-project-join language: enough to exercise the
    planner protocol (eligible predicates, cost estimation, access-path
    selection) and the bound-plan machinery the paper describes. Predicates
    are textual and parsed against the relation schema at translation time;
    [?n] parameters bind at execution. *)

type join = {
  j_relation : string;
  j_my_field : string;  (** column of the primary relation *)
  j_other_field : string;  (** column of the joined relation *)
}

type t = {
  q_relation : string;
  q_predicate : string option;
  q_project : string list option;
      (** column names; prefix joined columns resolve in the primary relation
          first, then the joined one *)
  q_join : join option;
}

val select : ?where:string -> ?project:string list -> string -> t

val join :
  ?where:string -> ?project:string list -> string ->
  on:string * string * string -> t
(** [join r ~on:(s, my_field, other_field)]. *)

val key : t -> string
(** Canonical cache key for the bound-plan cache. *)

val pp : Format.formatter -> t -> unit
