(** Tuple-at-a-time plan execution.

    Drives the generic interfaces directly: storage-method scans with filter
    pushdown, access-path direct-by-key and key-sequential accesses followed
    by record fetches through the storage method, nested-loop and join-index
    joins. Parameters are substituted into the plan's predicates at open
    time. *)

open Dmx_value

type cursor = {
  next : unit -> Record.t option;
  close : unit -> unit;
}

val open_plan :
  Dmx_core.Ctx.t -> Plan.t -> ?params:Value.t array -> unit ->
  (cursor, Dmx_core.Error.t) result

val run :
  Dmx_core.Ctx.t -> Plan.t -> ?params:Value.t array -> unit ->
  (Record.t list, Dmx_core.Error.t) result
