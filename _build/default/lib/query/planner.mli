(** Query translation: eligible predicates to a bound plan.

    Implements the protocol of paper p. 223: the planner hands the conjuncts
    of the query predicate ("eligible predicates") to the relation's storage
    method and to every access-path attachment with instances on the relation;
    each reports relevance and an I/O+CPU estimate; the cheapest access wins
    (access path 0 being the storage method itself). Index accesses are
    charged an additional record fetch per qualifying key, since access paths
    return record keys that are then fetched through the storage method.

    For joins, a matching join-index attachment competes with a nested-loop
    plan whose inner side is planned with the join value as a parameter. *)

val translate :
  Dmx_core.Ctx.t -> Query.t -> (Plan.t, Dmx_core.Error.t) result

val candidate_report :
  Dmx_core.Ctx.t -> Query.t -> (string list, Dmx_core.Error.t) result
(** For EXPLAIN-style output and tests: every access candidate considered,
    with its cost. *)
