open Dmx_value
open Dmx_expr
open Dmx_core
module Descriptor = Dmx_catalog.Descriptor

type cursor = {
  next : unit -> Record.t option;
  close : unit -> unit;
}

let ( let* ) = Result.bind

let empty_cursor = { next = (fun () -> None); close = (fun () -> ()) }

(* Scan bounds over a composed key from a (parameter-bound) predicate. *)
let bounds_of ~key_fields pred =
  match pred with
  | None -> (Intf.Unbounded, Intf.Unbounded)
  | Some p -> begin
    match Analyze.key_range ~key_fields p with
    | None -> (Intf.Unbounded, Intf.Unbounded)
    | Some (eq, range) ->
      let extend v = Array.append eq [| v |] in
      let lo =
        match range.Analyze.lo with
        | Analyze.Unbounded ->
          if Array.length eq = 0 then Intf.Unbounded else Intf.Incl eq
        | Analyze.Incl v -> Intf.Incl (extend v)
        | Analyze.Excl v -> Intf.Excl (extend v)
      in
      let hi =
        match range.Analyze.hi with
        | Analyze.Unbounded ->
          if Array.length eq = 0 then Intf.Unbounded else Intf.Incl eq
        | Analyze.Incl v -> Intf.Incl (extend v)
        | Analyze.Excl v -> Intf.Excl (extend v)
      in
      (lo, hi)
  end

let cursor_of_record_scan (scan : Intf.record_scan) =
  {
    next = (fun () -> Option.map snd (scan.rs_next ()));
    close = scan.rs_close;
  }

(* Fetch-and-filter cursor over a stream of record keys. *)
let fetch_cursor ctx (desc : Descriptor.t) pred keys_next close =
  let (module M : Intf.STORAGE_METHOD) =
    Registry.storage_method desc.smethod_id
  in
  let rec next () =
    match keys_next () with
    | None -> None
    | Some key -> begin
      match M.fetch ctx desc key () with
      | None -> next ()  (* entry pointing at a record deleted by us *)
      | Some record -> begin
        match pred with
        | Some p when not (Eval.test record p) -> next ()
        | _ -> Some record
      end
    end
  in
  { next; close }

let exec_single ctx (s : Plan.single) ~params =
  let pred = Option.map (Expr.subst_params params) s.predicate in
  match s.access with
  | Plan.Seq_scan ->
    let* scan = Relation.scan ctx s.desc ?filter:pred () in
    Ok (cursor_of_record_scan scan)
  | Plan.Keyed_storage { key_fields } ->
    let lo, hi = bounds_of ~key_fields pred in
    let* scan = Relation.scan ctx s.desc ~lo ~hi ?filter:pred () in
    Ok (cursor_of_record_scan scan)
  | Plan.Index_eq { at_id; instance; fields } -> begin
    match Analyze.key_range ~key_fields:fields (Option.get pred) with
    | Some (eq, _) when Array.length eq = Array.length fields ->
      let* keys =
        Relation.lookup ctx s.desc ~attachment_id:at_id ~instance ~key:eq
      in
      let remaining = ref keys in
      let keys_next () =
        match !remaining with
        | [] -> None
        | k :: rest ->
          remaining := rest;
          Some k
      in
      Ok (fetch_cursor ctx s.desc pred keys_next (fun () -> ()))
    | _ ->
      (* Parameters failed to produce a full key (e.g. NULL): no matches
         under SQL semantics. *)
      Ok empty_cursor
  end
  | Plan.Index_range { at_id; instance; fields } ->
    let lo, hi = bounds_of ~key_fields:fields pred in
    let* ks =
      Relation.attachment_scan ctx s.desc ~attachment_id:at_id ~instance ~lo
        ~hi ()
    in
    Ok (fetch_cursor ctx s.desc pred ks.Intf.ks_next ks.Intf.ks_close)
  | Plan.Spatial { at_id; instance; rect_exprs } -> begin
    let rect_vals =
      Array.map
        (fun e -> Eval.eval [||] (Expr.subst_params params e))
        rect_exprs
    in
    match Array.exists (fun v -> v = Value.Null) rect_vals with
    | true -> Ok empty_cursor
    | false ->
      let* keys =
        Relation.lookup ctx s.desc ~attachment_id:at_id ~instance
          ~key:rect_vals
      in
      let remaining = ref keys in
      let keys_next () =
        match !remaining with
        | [] -> None
        | k :: rest ->
          remaining := rest;
          Some k
      in
      Ok (fetch_cursor ctx s.desc pred keys_next (fun () -> ()))
  end

let extend_params params join_param v =
  let arr = Array.make (max (Array.length params) (join_param + 1)) Value.Null in
  Array.blit params 0 arr 0 (Array.length params);
  arr.(join_param) <- v;
  arr

let exec_join ctx ~outer ~(inner_desc : Descriptor.t) ~my_field ~other_field
    ~method_ ~params =
  ignore other_field;
  match (method_ : Plan.join_method) with
  | Plan.Nested_loop { inner; join_param } ->
    let* outer_cur = exec_single ctx outer ~params in
    let state = ref None in  (* (outer record, inner cursor) *)
    let rec next () =
      match !state with
      | Some (orec, (inner_cur : cursor)) -> begin
        match inner_cur.next () with
        | Some irec -> Some (Array.append orec irec)
        | None ->
          inner_cur.close ();
          state := None;
          next ()
      end
      | None -> begin
        match outer_cur.next () with
        | None -> None
        | Some orec ->
          let params' = extend_params params join_param orec.(my_field) in
          (match exec_single ctx inner ~params:params' with
          | Ok inner_cur ->
            state := Some (orec, inner_cur);
            next ()
          | Error e -> Error.raise_err e)
      end
    in
    Ok
      {
        next;
        close =
          (fun () ->
            (match !state with
            | Some (_, c) -> c.close ()
            | None -> ());
            outer_cur.close ());
      }
  | Plan.Via_join_index { at_id = _; instance } ->
    let pred =
      Option.map (Expr.subst_params params) outer.Plan.predicate
    in
    let pairs =
      ref (Dmx_attach.Join_index.pairs_of_instance ctx outer.Plan.desc ~instance)
    in
    let (module MO : Intf.STORAGE_METHOD) =
      Registry.storage_method outer.Plan.desc.Descriptor.smethod_id
    in
    let (module MI : Intf.STORAGE_METHOD) =
      Registry.storage_method inner_desc.Descriptor.smethod_id
    in
    let rec next () =
      match !pairs with
      | [] -> None
      | (okey, ikey) :: rest -> begin
        pairs := rest;
        match MO.fetch ctx outer.Plan.desc okey () with
        | None -> next ()
        | Some orec ->
          if
            match pred with
            | Some p -> not (Eval.test orec p)
            | None -> false
          then next ()
          else begin
            match MI.fetch ctx inner_desc ikey () with
            | None -> next ()
            | Some irec -> Some (Array.append orec irec)
          end
      end
    in
    Ok { next; close = (fun () -> ()) }

let project_cursor projection (c : cursor) =
  match projection with
  | None -> c
  | Some fields ->
    {
      c with
      next =
        (fun () -> Option.map (fun r -> Record.project r fields) (c.next ()));
    }

let open_plan ctx (plan : Plan.t) ?(params = [||]) () =
  let* base =
    match plan.shape with
    | Plan.Single s -> exec_single ctx s ~params
    | Plan.Join { outer; inner_desc; my_field; other_field; method_ } ->
      exec_join ctx ~outer ~inner_desc ~my_field ~other_field ~method_ ~params
  in
  Ok (project_cursor plan.projection base)

let run ctx plan ?params () =
  match open_plan ctx plan ?params () with
  | Error _ as e -> e
  | exception Eval.Error msg -> Error (Error.Internal ("evaluation: " ^ msg))
  | Ok cursor ->
    let rec drain acc =
      match cursor.next () with
      | None ->
        cursor.close ();
        Ok (List.rev acc)
      | Some r -> drain (r :: acc)
      | exception Error.Error e ->
        cursor.close ();
        Error e
      | exception Eval.Error msg ->
        cursor.close ();
        Error (Error.Internal ("evaluation: " ^ msg))
    in
    drain []
