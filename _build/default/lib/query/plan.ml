open Dmx_expr
open Dmx_catalog

type access =
  | Seq_scan
  | Keyed_storage of { key_fields : int array }
  | Index_eq of { at_id : int; instance : int; fields : int array }
  | Index_range of { at_id : int; instance : int; fields : int array }
  | Spatial of { at_id : int; instance : int; rect_exprs : Expr.t array }

type single = {
  desc : Descriptor.t;
  access : access;
  predicate : Expr.t option;
  est : Dmx_core.Cost.estimate;
}

type join_method =
  | Nested_loop of { inner : single; join_param : int }
  | Via_join_index of { at_id : int; instance : int }

type shape =
  | Single of single
  | Join of {
      outer : single;
      inner_desc : Descriptor.t;
      my_field : int;
      other_field : int;
      method_ : join_method;
    }

type t = {
  shape : shape;
  projection : int array option;
  deps : (int * int) list;
  out_arity : int;
}

let valid ctx t =
  List.for_all
    (fun (rel_id, version) ->
      match Dmx_catalog.Catalog.find_by_id ctx.Dmx_core.Ctx.catalog rel_id with
      | Some d -> d.Descriptor.version = version
      | None -> false)
    t.deps

let describe_access (desc : Descriptor.t) = function
  | Seq_scan -> Fmt.str "seq_scan(%s)" desc.rel_name
  | Keyed_storage _ -> Fmt.str "keyed_scan(%s)" desc.rel_name
  | Index_eq { at_id; instance; _ } ->
    Fmt.str "index_eq(%s via %s#%d)" desc.rel_name
      (Dmx_core.Registry.attachment_name at_id)
      instance
  | Index_range { at_id; instance; _ } ->
    Fmt.str "index_range(%s via %s#%d)" desc.rel_name
      (Dmx_core.Registry.attachment_name at_id)
      instance
  | Spatial { at_id; instance; _ } ->
    Fmt.str "spatial(%s via %s#%d)" desc.rel_name
      (Dmx_core.Registry.attachment_name at_id)
      instance

let describe t =
  match t.shape with
  | Single s -> describe_access s.desc s.access
  | Join { outer; inner_desc; method_; _ } -> begin
    match method_ with
    | Nested_loop { inner; _ } ->
      Fmt.str "nested_loop(%s, %s)"
        (describe_access outer.desc outer.access)
        (describe_access inner.desc inner.access)
    | Via_join_index { at_id; instance } ->
      Fmt.str "join_index(%s, %s via %s#%d)"
        (describe_access outer.desc outer.access)
        inner_desc.rel_name
        (Dmx_core.Registry.attachment_name at_id)
        instance
  end
