(** I/O accounting.

    The cost-estimation protocol (paper p. 223) is expressed in I/O and CPU
    units; benches validate cost estimates against these counters rather than
    against wall-clock alone. *)

type t = {
  mutable page_reads : int;  (** pages read from the backing store *)
  mutable page_writes : int;  (** pages written to the backing store *)
  mutable page_allocs : int;
  mutable pool_hits : int;  (** pins satisfied from the buffer pool *)
  mutable pool_misses : int;  (** pins that had to read the backing store *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val diff : after:t -> before:t -> t
val pp : Format.formatter -> t -> unit
