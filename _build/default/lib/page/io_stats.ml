type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable page_allocs : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
}

let create () =
  { page_reads = 0; page_writes = 0; page_allocs = 0; pool_hits = 0; pool_misses = 0 }

let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.page_allocs <- 0;
  t.pool_hits <- 0;
  t.pool_misses <- 0

let copy t = { t with page_reads = t.page_reads }

let diff ~after ~before =
  {
    page_reads = after.page_reads - before.page_reads;
    page_writes = after.page_writes - before.page_writes;
    page_allocs = after.page_allocs - before.page_allocs;
    pool_hits = after.pool_hits - before.pool_hits;
    pool_misses = after.pool_misses - before.pool_misses;
  }

let pp ppf t =
  Fmt.pf ppf "reads=%d writes=%d allocs=%d hits=%d misses=%d" t.page_reads
    t.page_writes t.page_allocs t.pool_hits t.pool_misses
