lib/page/buffer_pool.ml: Bytes Disk Fmt Fun Hashtbl
