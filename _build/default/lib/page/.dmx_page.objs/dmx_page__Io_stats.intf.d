lib/page/io_stats.mli: Format
