lib/page/slotted.mli:
