lib/page/slotted.ml: Bytes Char List String
