lib/page/disk.ml: Array Bytes Fmt Int32 Int64 Io_stats String Unix
