lib/page/io_stats.ml: Fmt
