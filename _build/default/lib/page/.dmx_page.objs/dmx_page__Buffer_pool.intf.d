lib/page/buffer_pool.mli: Disk
