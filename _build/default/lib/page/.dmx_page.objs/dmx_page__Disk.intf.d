lib/page/disk.mli: Io_stats
