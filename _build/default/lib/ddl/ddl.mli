(** Data definition.

    "The data definition language of the DBMS has been extended to allow
    specification of a storage method or attachment type and an
    attribute/value list for extension-specific parameters. Storage method and
    attachment implementations supply generic operations to validate and
    process the attribute lists" (paper p. 222).

    All DDL is transactional: catalog changes are logged ([Catalog]-source Ext
    records) and undone on abort; the release of dropped storage is deferred
    to commit through the deferred-action queue, "making drop (destroy)
    operations undoable without logging the entire state of the relation or
    access path" (p. 224). *)

open Dmx_value
open Dmx_catalog

val create_relation :
  Dmx_core.Ctx.t -> name:string -> schema:Schema.t -> storage_method:string ->
  ?attrs:Attrlist.t -> unit -> (Descriptor.t, Dmx_core.Error.t) result

val drop_relation :
  Dmx_core.Ctx.t -> name:string -> (unit, Dmx_core.Error.t) result

val create_attachment :
  Dmx_core.Ctx.t -> relation:string -> attachment_type:string ->
  name:string -> ?attrs:Attrlist.t -> unit -> (unit, Dmx_core.Error.t) result
(** E.g. [create_attachment ctx ~relation:"employee"
    ~attachment_type:"btree_index" ~name:"emp_dept"
    ~attrs:[("fields", "dept")] ()]. *)

val drop_attachment :
  Dmx_core.Ctx.t -> relation:string -> attachment_type:string ->
  name:string -> (unit, Dmx_core.Error.t) result

val find_relation :
  Dmx_core.Ctx.t -> string -> (Descriptor.t, Dmx_core.Error.t) result
