lib/ddl/ddl.ml: Ctx Dmx_catalog Dmx_core Dmx_lock Dmx_txn Dmx_wal Error Fmt Intf Registry Result
