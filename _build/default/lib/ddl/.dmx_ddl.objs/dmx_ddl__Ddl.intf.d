lib/ddl/ddl.mli: Attrlist Descriptor Dmx_catalog Dmx_core Dmx_value Schema
