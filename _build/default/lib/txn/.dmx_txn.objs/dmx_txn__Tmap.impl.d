lib/txn/tmap.ml: Int Map
