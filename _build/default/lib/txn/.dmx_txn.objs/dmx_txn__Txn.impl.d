lib/txn/txn.ml: Dmx_wal Fmt List Tmap
