lib/txn/tmap.mli:
