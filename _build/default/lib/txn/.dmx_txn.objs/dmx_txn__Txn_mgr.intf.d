lib/txn/txn_mgr.mli: Dmx_lock Dmx_wal Log_record Recovery Txn Wal
