lib/txn/txn_mgr.ml: Dmx_lock Dmx_wal Hashtbl Int64 List Log_record Recovery Set Txn Wal
