lib/txn/txn.mli: Dmx_wal Format Tmap
