(** Transactions.

    Carries the per-transaction state the common services need: deferred
    action queues ("before transaction enters the prepared state" and commit,
    paper p. 225), registered key-sequential scans (closed at transaction
    termination; positions captured at savepoints and restored after partial
    rollback, paper p. 224), savepoints, and a typed map of extension-private
    state. *)

type state = Active | Committed | Aborted

(** Deferred-action queue events. *)
type event =
  | Before_prepare
      (** drained after the last modification, before commit hardening —
          deferred integrity checks run here and may still veto (raise) *)
  | On_commit  (** drained after the commit record is hardened — deferred
                   drops release storage here *)
  | On_abort  (** drained after rollback completes *)

(** What a registered scan must provide: [close] for transaction termination,
    and [capture] which snapshots the current position and returns the thunk
    that restores it (run after a partial rollback crosses the savepoint). *)
type scan_reg = {
  scan_close : unit -> unit;
  scan_capture : unit -> (unit -> unit);
}

type savepoint = {
  sp_name : string;
  sp_lsn : Dmx_wal.Log_record.lsn;
  sp_restores : (unit -> unit) list;
}

type t = {
  id : int;
  mutable state : state;
  mutable deferred : (event * (unit -> unit)) list;  (** oldest first *)
  mutable scans : (int * scan_reg) list;
  mutable savepoints : savepoint list;  (** newest first *)
  mutable attrs : Tmap.t;
  mutable next_scan_id : int;
}

val make : int -> t
val is_active : t -> bool
val check_active : t -> unit

val defer : t -> event -> (unit -> unit) -> unit
(** Append an entry to the deferred-action queue for [event]. *)

val take_deferred : t -> event -> (unit -> unit) list
(** Remove and return the queue for [event], oldest first. *)

val register_scan : t -> scan_reg -> int
(** Returns a handle for {!unregister_scan} (scans closed early by the user). *)

val unregister_scan : t -> int -> unit

val close_all_scans : t -> unit
(** Transaction-termination notification to every open scan. *)

val capture_scan_positions : t -> (unit -> unit) list

val set_attr : t -> 'a Tmap.key -> 'a -> unit
val attr : t -> 'a Tmap.key -> 'a option
val pp : Format.formatter -> t -> unit
