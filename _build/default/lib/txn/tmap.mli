(** Heterogeneous per-transaction state.

    Extensions attach private state to a transaction (open scans, foreign
    connections, pending work) under typed keys, without the common system
    knowing the types — the in-memory analogue of the paper's rule that each
    extension interprets only its own descriptor data. *)

type t

type 'a key

val new_key : string -> 'a key
val empty : t
val add : 'a key -> 'a -> t -> t
val find : 'a key -> t -> 'a option
val remove : 'a key -> t -> t
val mem : 'a key -> t -> bool
