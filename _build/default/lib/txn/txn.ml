type state = Active | Committed | Aborted

type event =
  | Before_prepare
  | On_commit
  | On_abort

type scan_reg = {
  scan_close : unit -> unit;
  scan_capture : unit -> (unit -> unit);
}

type savepoint = {
  sp_name : string;
  sp_lsn : Dmx_wal.Log_record.lsn;
  sp_restores : (unit -> unit) list;
}

type t = {
  id : int;
  mutable state : state;
  mutable deferred : (event * (unit -> unit)) list;
  mutable scans : (int * scan_reg) list;
  mutable savepoints : savepoint list;
  mutable attrs : Tmap.t;
  mutable next_scan_id : int;
}

let make id =
  {
    id;
    state = Active;
    deferred = [];
    scans = [];
    savepoints = [];
    attrs = Tmap.empty;
    next_scan_id = 0;
  }

let is_active t = t.state = Active

let check_active t =
  if not (is_active t) then
    invalid_arg (Fmt.str "transaction %d is not active" t.id)

let defer t event f = t.deferred <- t.deferred @ [ (event, f) ]

let take_deferred t event =
  let mine, rest = List.partition (fun (e, _) -> e = event) t.deferred in
  t.deferred <- rest;
  List.map snd mine

let register_scan t reg =
  let id = t.next_scan_id in
  t.next_scan_id <- id + 1;
  t.scans <- (id, reg) :: t.scans;
  id

let unregister_scan t id = t.scans <- List.remove_assoc id t.scans

let close_all_scans t =
  let scans = t.scans in
  t.scans <- [];
  List.iter (fun (_, reg) -> reg.scan_close ()) scans

let capture_scan_positions t =
  List.map (fun (_, reg) -> reg.scan_capture ()) t.scans

let set_attr t key v = t.attrs <- Tmap.add key v t.attrs
let attr t key = Tmap.find key t.attrs

let pp ppf t =
  Fmt.pf ppf "tx%d(%s)" t.id
    (match t.state with
    | Active -> "active"
    | Committed -> "committed"
    | Aborted -> "aborted")
