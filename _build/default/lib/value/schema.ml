type column = {
  name : string;
  ty : Value.ty;
  nullable : bool;
}

type t = { cols : column array }

let column ?(nullable = true) name ty = { name; ty; nullable }

let make cols =
  let seen = Hashtbl.create 8 in
  let rec check = function
    | [] -> Ok ()
    | c :: rest ->
      let key = String.lowercase_ascii c.name in
      if c.name = "" then Error "schema: empty column name"
      else if Hashtbl.mem seen key then
        Error (Fmt.str "schema: duplicate column %S" c.name)
      else begin
        Hashtbl.add seen key ();
        check rest
      end
  in
  if cols = [] then Error "schema: no columns"
  else
    match check cols with
    | Ok () -> Ok { cols = Array.of_list cols }
    | Error _ as e -> e

let make_exn cols =
  match make cols with Ok s -> s | Error e -> invalid_arg e

let arity t = Array.length t.cols
let columns t = Array.to_list t.cols
let col t i = t.cols.(i)

let field_index t name =
  let key = String.lowercase_ascii name in
  let rec loop i =
    if i >= Array.length t.cols then None
    else if String.lowercase_ascii t.cols.(i).name = key then Some i
    else loop (i + 1)
  in
  loop 0

let field_index_exn t name =
  match field_index t name with
  | Some i -> i
  | None -> invalid_arg (Fmt.str "schema: no column %S" name)

let field_name t i = t.cols.(i).name
let field_ty t i = t.cols.(i).ty

let validate_record t record =
  if Array.length record <> Array.length t.cols then
    Error
      (Fmt.str "record arity %d does not match schema arity %d"
         (Array.length record) (Array.length t.cols))
  else
    let rec loop i =
      if i >= Array.length t.cols then Ok ()
      else
        let c = t.cols.(i) in
        let v = record.(i) in
        if v = Value.Null && not c.nullable then
          Error (Fmt.str "column %S is NOT NULL" c.name)
        else if not (Value.has_type c.ty v) then
          Error
            (Fmt.str "column %S expects %s, got %s" c.name
               (Value.ty_to_string c.ty) (Value.to_string v))
        else loop (i + 1)
    in
    loop 0

let equal a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2 (fun x y -> x = y) a.cols b.cols

let pp ppf t =
  let pp_col ppf c =
    Fmt.pf ppf "%s %a%s" c.name Value.pp_ty c.ty
      (if c.nullable then "" else " NOT NULL")
  in
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") pp_col) t.cols
