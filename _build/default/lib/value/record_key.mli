(** Record keys.

    "The definition and interpretation of record keys is controlled by the
    storage method implementation. For example, record keys may be record
    addresses or may be composed from some subset of the fields of the
    records." (paper, p. 221)

    [Rid] is the record-address form used by the heap and similar methods;
    [Fields] is the field-composed form used by key-organised storage such as
    the B-tree storage method. Access paths map access-path keys to record
    keys of either form. *)

type t =
  | Rid of { page : int; slot : int }
  | Fields of Value.t array

val rid : page:int -> slot:int -> t
val fields : Value.t array -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val encode : t -> bytes
val decode : bytes -> t
val enc : Codec.Enc.t -> t -> unit
val dec : Codec.Dec.t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
