(** Field values.

    Every storage method and attachment exchanges records built from this
    common value representation — the paper's "common record and field value
    representations needed to allow communication with the generic
    operations". *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string

(** Value types, used in schemas and for checking. *)
type ty = Tbool | Tint | Tfloat | Tstring

val type_of : t -> ty option
(** [type_of v] is the type of [v], or [None] for [Null]. *)

val has_type : ty -> t -> bool
(** [has_type ty v] holds when [v] is [Null] or has type [ty]; NULL is a
    member of every domain. *)

val compare : t -> t -> int
(** Total order used by ordered access paths and record keys. [Null] sorts
    before every non-null value; values of distinct types order by type.
    SQL comparison semantics (NULL = unknown) live in {!Dmx_expr.Eval}, not
    here: access paths need a total order. *)

val equal : t -> t -> bool

val hash : t -> int
(** Stable hash for hash-based access paths. *)

val int : int -> t
(** [int n] is [Int (Int64.of_int n)]. *)

val to_int : t -> int64 option
val to_float : t -> float option
val to_string_opt : t -> string option
val to_bool : t -> bool option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
val ty_of_string : string -> ty option
