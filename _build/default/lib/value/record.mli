(** Record helpers.

    A record is simply a [Value.t array] positionally matching a schema. *)

type t = Value.t array

val project : t -> int array -> t
(** [project r fields] extracts the given field positions, in order. *)

val equal : t -> t -> bool
val compare_on : int array -> t -> t -> int
(** Lexicographic comparison on the given field positions. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
