(** Relation schemas.

    A schema describes the user-visible fields of a relation. Storage methods
    receive the schema at relation creation and are free to choose any
    physical representation for it. *)

type column = {
  name : string;
  ty : Value.ty;
  nullable : bool;
}

type t

val make : column list -> (t, string) result
(** [make cols] checks that column names are non-empty and unique
    (case-insensitively). *)

val make_exn : column list -> t

val column : ?nullable:bool -> string -> Value.ty -> column
(** [column name ty] is a column; [nullable] defaults to [true]. *)

val arity : t -> int
val columns : t -> column list
val col : t -> int -> column
val field_index : t -> string -> int option
val field_index_exn : t -> string -> int
val field_name : t -> int -> string
val field_ty : t -> int -> Value.ty

val validate_record : t -> Value.t array -> (unit, string) result
(** Arity, type and NOT NULL checking for a record against the schema. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
