type t =
  | Rid of { page : int; slot : int }
  | Fields of Value.t array

let rid ~page ~slot = Rid { page; slot }
let fields vs = Fields vs

let compare a b =
  match a, b with
  | Rid a, Rid b ->
    let c = Int.compare a.page b.page in
    if c <> 0 then c else Int.compare a.slot b.slot
  | Fields a, Fields b ->
    let la = Array.length a and lb = Array.length b in
    let rec loop i =
      if i >= la || i >= lb then Int.compare la lb
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0
  | Rid _, Fields _ -> -1
  | Fields _, Rid _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Rid { page; slot } -> Hashtbl.hash (page, slot)
  | Fields vs -> Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 vs

let enc e = function
  | Rid { page; slot } ->
    Codec.Enc.byte e 0;
    Codec.Enc.varint e page;
    Codec.Enc.varint e slot
  | Fields vs ->
    Codec.Enc.byte e 1;
    Codec.Enc.record e vs

let dec d =
  match Codec.Dec.byte d with
  | 0 ->
    let page = Codec.Dec.varint d in
    let slot = Codec.Dec.varint d in
    Rid { page; slot }
  | 1 -> Fields (Codec.Dec.record d)
  | n -> failwith (Fmt.str "Record_key.dec: bad tag %d" n)

let encode t =
  let e = Codec.Enc.create () in
  enc e t;
  Codec.Enc.to_bytes e

let decode b = dec (Codec.Dec.of_bytes b)

let pp ppf = function
  | Rid { page; slot } -> Fmt.pf ppf "rid(%d,%d)" page slot
  | Fields vs -> Fmt.pf ppf "key(%a)" Fmt.(array ~sep:(any ",") Value.pp) vs

let to_string t = Fmt.str "%a" pp t
