type t = Value.t array

let project r fields = Array.map (fun i -> r.(i)) fields

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare_on fields a b =
  let rec loop i =
    if i >= Array.length fields then 0
    else
      let f = fields.(i) in
      let c = Value.compare a.(f) b.(f) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let pp ppf r = Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") Value.pp) r
let to_string r = Fmt.str "%a" pp r
