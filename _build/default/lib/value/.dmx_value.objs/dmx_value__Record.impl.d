lib/value/record.ml: Array Fmt Value
