lib/value/value.mli: Format
