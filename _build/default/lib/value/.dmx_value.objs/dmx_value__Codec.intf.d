lib/value/codec.mli: Schema Value
