lib/value/codec.ml: Array Buffer Bytes Char Fmt Int64 List Schema String Value
