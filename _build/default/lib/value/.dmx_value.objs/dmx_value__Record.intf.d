lib/value/record.mli: Format Value
