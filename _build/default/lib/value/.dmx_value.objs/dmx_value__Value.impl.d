lib/value/value.ml: Bool Float Fmt Hashtbl Int Int64 String
