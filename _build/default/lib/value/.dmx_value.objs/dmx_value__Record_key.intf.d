lib/value/record_key.mli: Codec Format Value
