lib/value/record_key.ml: Array Codec Fmt Hashtbl Int Value
