lib/value/schema.ml: Array Fmt Hashtbl String Value
