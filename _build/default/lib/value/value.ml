type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string

type ty = Tbool | Tint | Tfloat | Tstring

let type_of = function
  | Null -> None
  | Bool _ -> Some Tbool
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | String _ -> Some Tstring

let has_type ty v = match type_of v with None -> true | Some t -> t = ty

(* Rank used to order values of distinct types; NULL lowest. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int64.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let int n = Int (Int64.of_int n)
let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (Int64.to_float i) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int64 ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s

let to_string v = Fmt.str "%a" pp v

let pp_ty ppf ty =
  Fmt.string ppf
    (match ty with
    | Tbool -> "BOOL"
    | Tint -> "INT"
    | Tfloat -> "FLOAT"
    | Tstring -> "STRING")

let ty_to_string ty = Fmt.str "%a" pp_ty ty

let ty_of_string s =
  match String.uppercase_ascii s with
  | "BOOL" | "BOOLEAN" -> Some Tbool
  | "INT" | "INTEGER" -> Some Tint
  | "FLOAT" | "DOUBLE" | "REAL" -> Some Tfloat
  | "STRING" | "TEXT" | "VARCHAR" -> Some Tstring
  | _ -> None
