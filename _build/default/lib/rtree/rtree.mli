(** Page-based R-tree (Guttman 1984), the spatial access structure behind the
    R-tree index attachment. Entries are (rectangle, opaque payload) pairs —
    payloads are encoded record keys, and the same (rect, payload) pair is
    stored at most once.

    Insertion uses ChooseLeaf by least enlargement with quadratic node
    splitting; the root page id is fixed (root splits push halves down).
    Deletion is lazy (no CondenseTree reinsertion): entries are removed and
    ancestor rectangles tightened, but underfull nodes persist — acceptable
    for an access path whose contents mirror a relation, and it keeps
    log-driven undo simple. *)

type t

val create : Dmx_page.Buffer_pool.t -> t
val open_tree : Dmx_page.Buffer_pool.t -> root:int -> t
val root : t -> int

val insert : t -> rect:Rect.t -> payload:string -> unit
val delete : t -> rect:Rect.t -> payload:string -> bool
(** Remove the exact (rect, payload) entry. *)

val search_overlapping : t -> Rect.t -> (Rect.t * string) list
(** Entries whose rectangle intersects the query window. *)

val search_enclosed_by : t -> Rect.t -> (Rect.t * string) list
(** Entries whose rectangle the query rectangle fully encloses — the paper's
    ENCLOSES predicate. *)

val search_enclosing : t -> Rect.t -> (Rect.t * string) list
(** Entries whose rectangle encloses the query rectangle. *)

val count : t -> int
val height : t -> int
val iter : t -> (Rect.t -> string -> unit) -> unit

val check_invariants : t -> (unit, string) result
(** Every internal entry's rectangle must enclose its subtree's entries;
    heights must be uniform. *)
