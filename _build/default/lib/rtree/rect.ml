type t = {
  xlo : float;
  ylo : float;
  xhi : float;
  yhi : float;
}

let make ~xlo ~ylo ~xhi ~yhi =
  {
    xlo = Float.min xlo xhi;
    ylo = Float.min ylo yhi;
    xhi = Float.max xlo xhi;
    yhi = Float.max ylo yhi;
  }

let point x y = { xlo = x; ylo = y; xhi = x; yhi = y }
let area r = (r.xhi -. r.xlo) *. (r.yhi -. r.ylo)

let union a b =
  {
    xlo = Float.min a.xlo b.xlo;
    ylo = Float.min a.ylo b.ylo;
    xhi = Float.max a.xhi b.xhi;
    yhi = Float.max a.yhi b.yhi;
  }

let intersects a b =
  a.xlo <= b.xhi && b.xlo <= a.xhi && a.ylo <= b.yhi && b.ylo <= a.yhi

let encloses outer inner =
  outer.xlo <= inner.xlo && outer.ylo <= inner.ylo && outer.xhi >= inner.xhi
  && outer.yhi >= inner.yhi

let enlargement a b = area (union a b) -. area a
let equal a b = a = b

let enc e r =
  let open Dmx_value.Codec.Enc in
  float e r.xlo;
  float e r.ylo;
  float e r.xhi;
  float e r.yhi

let dec d =
  let open Dmx_value.Codec.Dec in
  let xlo = float d in
  let ylo = float d in
  let xhi = float d in
  let yhi = float d in
  { xlo; ylo; xhi; yhi }

let pp ppf r = Fmt.pf ppf "[%g,%g;%g,%g]" r.xlo r.ylo r.xhi r.yhi
