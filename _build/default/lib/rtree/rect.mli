(** Axis-aligned rectangles for the R-tree. *)

type t = {
  xlo : float;
  ylo : float;
  xhi : float;
  yhi : float;
}

val make : xlo:float -> ylo:float -> xhi:float -> yhi:float -> t
(** Normalises so [xlo <= xhi] and [ylo <= yhi]. *)

val point : float -> float -> t
val area : t -> float
val union : t -> t -> t
val intersects : t -> t -> bool
val encloses : t -> t -> bool
(** [encloses outer inner]. *)

val enlargement : t -> t -> float
(** Area growth of [union a b] over [a] — Guttman's ChooseLeaf metric. *)

val equal : t -> t -> bool
val enc : Dmx_value.Codec.Enc.t -> t -> unit
val dec : Dmx_value.Codec.Dec.t -> t
val pp : Format.formatter -> t -> unit
