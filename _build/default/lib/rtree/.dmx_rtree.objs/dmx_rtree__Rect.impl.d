lib/rtree/rect.ml: Dmx_value Float Fmt
