lib/rtree/rect.mli: Dmx_value Format
