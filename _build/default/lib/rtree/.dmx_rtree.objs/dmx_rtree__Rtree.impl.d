lib/rtree/rtree.ml: Array Buffer_pool Bytes Codec Disk Dmx_page Dmx_value Float Fmt List Option Rect String
