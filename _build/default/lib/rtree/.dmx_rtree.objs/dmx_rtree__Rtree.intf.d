lib/rtree/rtree.mli: Dmx_page Rect
