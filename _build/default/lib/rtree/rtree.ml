open Dmx_value
open Dmx_page

type node =
  | Leaf of (Rect.t * string) list
  | Internal of (Rect.t * int) list  (* (MBR of subtree, child page) *)

type t = {
  bp : Buffer_pool.t;
  root : int;
}

(* ---- node (de)serialisation ---- *)

let encode_node node =
  let e = Codec.Enc.create ~size:256 () in
  (match node with
  | Leaf entries ->
    Codec.Enc.byte e 0;
    Codec.Enc.list e
      (fun e (r, p) ->
        Rect.enc e r;
        Codec.Enc.string e p)
      entries
  | Internal entries ->
    Codec.Enc.byte e 1;
    Codec.Enc.list e
      (fun e (r, c) ->
        Rect.enc e r;
        Codec.Enc.varint e c)
      entries);
  Codec.Enc.to_string e

let decode_node data =
  let d = Codec.Dec.of_string data in
  match Codec.Dec.byte d with
  | 0 ->
    Leaf
      (Codec.Dec.list d (fun d ->
           let r = Rect.dec d in
           let p = Codec.Dec.string d in
           (r, p)))
  | 1 ->
    Internal
      (Codec.Dec.list d (fun d ->
           let r = Rect.dec d in
           let c = Codec.Dec.varint d in
           (r, c)))
  | n -> failwith (Fmt.str "Rtree: bad node tag %d" n)

let read_node t page_id =
  Buffer_pool.with_page t.bp page_id (fun frame ->
      let len = Bytes.get_uint16_le frame.Buffer_pool.data 0 in
      decode_node (Bytes.sub_string frame.Buffer_pool.data 2 len))

let write_node t page_id node =
  let data = encode_node node in
  let len = String.length data in
  if len + 2 > Disk.page_size (Buffer_pool.disk t.bp) then
    failwith "Rtree: node exceeds page size";
  Buffer_pool.with_page_mut t.bp page_id ~lsn:0L (fun frame ->
      Bytes.set_uint16_le frame.Buffer_pool.data 0 len;
      Bytes.blit_string data 0 frame.Buffer_pool.data 2 len)

let capacity t = Disk.page_size (Buffer_pool.disk t.bp) - 64
let node_size node = String.length (encode_node node)

let create bp =
  let frame = Buffer_pool.alloc bp in
  let t = { bp; root = frame.Buffer_pool.page_id } in
  Buffer_pool.unpin ~dirty:true bp frame;
  write_node t t.root (Leaf []);
  t

let open_tree bp ~root = { bp; root }
let root t = t.root

let alloc_page t =
  let frame = Buffer_pool.alloc t.bp in
  let id = frame.Buffer_pool.page_id in
  Buffer_pool.unpin ~dirty:true t.bp frame;
  id

let node_mbr = function
  | Leaf [] | Internal [] -> None
  | Leaf ((r0, _) :: rest) ->
    Some (List.fold_left (fun acc (r, _) -> Rect.union acc r) r0 rest)
  | Internal ((r0, _) :: rest) ->
    Some (List.fold_left (fun acc (r, _) -> Rect.union acc r) r0 rest)

(* ---- quadratic split (Guttman) over generic entries with a rect ---- *)

let quadratic_split rect_of entries =
  (* Pick seeds: the pair wasting the most area if grouped together. *)
  let arr = Array.of_list entries in
  let n = Array.length arr in
  assert (n >= 2);
  let best = ref (0, 1) in
  let best_waste = ref neg_infinity in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let ri = rect_of arr.(i) and rj = rect_of arr.(j) in
      let waste = Rect.area (Rect.union ri rj) -. Rect.area ri -. Rect.area rj in
      if waste > !best_waste then begin
        best_waste := waste;
        best := (i, j)
      end
    done
  done;
  let si, sj = !best in
  let g1 = ref [ arr.(si) ] and g2 = ref [ arr.(sj) ] in
  let m1 = ref (rect_of arr.(si)) and m2 = ref (rect_of arr.(sj)) in
  let rest =
    Array.to_list arr
    |> List.filteri (fun k _ -> k <> si && k <> sj)
  in
  (* Assign remaining entries by maximal preference difference. *)
  let remaining = ref rest in
  while !remaining <> [] do
    let pick, d1, d2 =
      List.fold_left
        (fun (best, bd1, bd2) e ->
          let r = rect_of e in
          let d1 = Rect.enlargement !m1 r and d2 = Rect.enlargement !m2 r in
          match best with
          | None -> (Some e, d1, d2)
          | Some _ ->
            if Float.abs (d1 -. d2) > Float.abs (bd1 -. bd2) then (Some e, d1, d2)
            else (best, bd1, bd2))
        (None, 0., 0.) !remaining
    in
    let e = Option.get pick in
    remaining := List.filter (fun x -> x != e) !remaining;
    let to_g1 =
      if d1 < d2 then true
      else if d2 < d1 then false
      else if Rect.area !m1 < Rect.area !m2 then true
      else if Rect.area !m2 < Rect.area !m1 then false
      else List.length !g1 <= List.length !g2
    in
    if to_g1 then begin
      g1 := e :: !g1;
      m1 := Rect.union !m1 (rect_of e)
    end
    else begin
      g2 := e :: !g2;
      m2 := Rect.union !m2 (rect_of e)
    end
  done;
  (!g1, !g2)

(* ---- insert ---- *)

type insert_result =
  | Updated of Rect.t  (* subtree MBR after insert *)
  | Split2 of (Rect.t * int) * (Rect.t * int)
      (* subtree was split: both (MBR, page) halves; the first reuses the
         original page *)

let rec insert_in t page_id rect payload =
  match read_node t page_id with
  | Leaf entries ->
    let entries = (rect, payload) :: entries in
    let node = Leaf entries in
    if node_size node <= capacity t then begin
      write_node t page_id node;
      Updated (Option.get (node_mbr node))
    end
    else begin
      let g1, g2 = quadratic_split fst entries in
      let right_id = alloc_page t in
      write_node t page_id (Leaf g1);
      write_node t right_id (Leaf g2);
      Split2
        ( (Option.get (node_mbr (Leaf g1)), page_id),
          (Option.get (node_mbr (Leaf g2)), right_id) )
    end
  | Internal entries ->
    (* ChooseLeaf: least enlargement, ties by smallest area. *)
    let _, (child_rect, child_id), idx =
      List.fold_left
        (fun (i, best, bi) (r, c) ->
          let cost = (Rect.enlargement r rect, Rect.area r) in
          match best with
          | (br, _) when (Rect.enlargement br rect, Rect.area br) <= cost ->
            (i + 1, best, bi)
          | _ -> (i + 1, (r, c), i))
        (0, List.hd entries, 0) entries
    in
    ignore child_rect;
    begin
      match insert_in t child_id rect payload with
      | Updated mbr ->
        let entries =
          List.mapi (fun i (r, c) -> if i = idx then (mbr, c) else (r, c)) entries
        in
        write_node t page_id (Internal entries);
        Updated (Option.get (node_mbr (Internal entries)))
      | Split2 (a, b) ->
        let entries =
          List.filteri (fun i _ -> i <> idx) entries @ [ a; b ]
        in
        let node = Internal entries in
        if node_size node <= capacity t then begin
          write_node t page_id node;
          Updated (Option.get (node_mbr node))
        end
        else begin
          let g1, g2 = quadratic_split fst entries in
          let right_id = alloc_page t in
          write_node t page_id (Internal g1);
          write_node t right_id (Internal g2);
          Split2
            ( (Option.get (node_mbr (Internal g1)), page_id),
              (Option.get (node_mbr (Internal g2)), right_id) )
        end
    end

let insert t ~rect ~payload =
  match insert_in t t.root rect payload with
  | Updated _ -> ()
  | Split2 ((r1, p1), (r2, p2)) ->
    (* Fixed root: move the half living in the root page out to a new page. *)
    assert (p1 = t.root);
    let left_id = alloc_page t in
    write_node t left_id (read_node t t.root);
    write_node t t.root (Internal [ (r1, left_id); (r2, p2) ])

(* ---- delete (lazy) ---- *)

let rec delete_in t page_id rect payload =
  match read_node t page_id with
  | Leaf entries ->
    let found =
      List.exists (fun (r, p) -> Rect.equal r rect && p = payload) entries
    in
    if not found then None
    else begin
      let entries =
        List.filter (fun (r, p) -> not (Rect.equal r rect && p = payload)) entries
      in
      write_node t page_id (Leaf entries);
      Some (node_mbr (Leaf entries))
    end
  | Internal entries ->
    let rec try_children acc = function
      | [] -> None
      | (r, c) :: rest ->
        if Rect.encloses r rect then begin
          match delete_in t c rect payload with
          | Some child_mbr ->
            let entries =
              List.rev_append acc
                ((match child_mbr with
                 | Some m -> [ (m, c) ]
                 | None -> [ (r, c) ] (* empty child: keep slot, stale MBR *))
                @ rest)
            in
            write_node t page_id (Internal entries);
            Some (node_mbr (Internal entries))
          | None -> try_children ((r, c) :: acc) rest
        end
        else try_children ((r, c) :: acc) rest
    in
    try_children [] entries

let delete t ~rect ~payload = delete_in t t.root rect payload <> None

(* ---- search ---- *)

let search t ~descend ~admit =
  let acc = ref [] in
  let rec walk page_id =
    match read_node t page_id with
    | Leaf entries ->
      List.iter (fun (r, p) -> if admit r then acc := (r, p) :: !acc) entries
    | Internal entries ->
      List.iter (fun (r, c) -> if descend r then walk c) entries
  in
  walk t.root;
  !acc

let search_overlapping t q =
  search t ~descend:(fun r -> Rect.intersects r q)
    ~admit:(fun r -> Rect.intersects r q)

let search_enclosed_by t q =
  search t ~descend:(fun r -> Rect.intersects r q)
    ~admit:(fun r -> Rect.encloses q r)

let search_enclosing t q =
  search t ~descend:(fun r -> Rect.encloses r q)
    ~admit:(fun r -> Rect.encloses r q)

let iter t f =
  let rec walk page_id =
    match read_node t page_id with
    | Leaf entries -> List.iter (fun (r, p) -> f r p) entries
    | Internal entries -> List.iter (fun (_, c) -> walk c) entries
  in
  walk t.root

let count t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let height t =
  let rec loop page_id acc =
    match read_node t page_id with
    | Leaf _ -> acc
    | Internal [] -> acc
    | Internal ((_, c) :: _) -> loop c (acc + 1)
  in
  loop t.root 1

let check_invariants t =
  let exception Bad of string in
  let fail fmt = Fmt.kstr (fun s -> raise (Bad s)) fmt in
  let rec check page_id ~window ~depth =
    match read_node t page_id with
    | Leaf entries ->
      List.iter
        (fun (r, _) ->
          match window with
          | Some w when not (Rect.encloses w r) ->
            fail "leaf %d entry escapes parent rectangle" page_id
          | _ -> ())
        entries;
      depth
    | Internal entries ->
      if entries = [] then fail "internal %d is empty" page_id;
      let depths =
        List.map
          (fun (r, c) ->
            (match window with
            | Some w when not (Rect.encloses w r) ->
              fail "internal %d entry escapes parent rectangle" page_id
            | _ -> ());
            check c ~window:(Some r) ~depth:(depth + 1))
          entries
      in
      (match depths with
      | d :: rest when List.exists (fun x -> x <> d) rest ->
        fail "internal %d has uneven subtree heights" page_id
      | _ -> ());
      List.hd depths
  in
  match check t.root ~window:None ~depth:0 with
  | _ -> Ok ()
  | exception Bad s -> Error s
