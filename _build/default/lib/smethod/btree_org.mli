(** The B-tree-organised storage method.

    "The records of the relation ... may be stored in the leaves of a B-tree
    index" (paper p. 221). Record keys are composed from declared key fields
    (DDL attribute [key], e.g. [key=id] or [key=dept,id]); key-sequential
    access returns records in key order without a separate index, and the
    cost estimator recognises predicates on the key prefix. *)

include Dmx_core.Intf.STORAGE_METHOD

val register : unit -> int
val id : unit -> int
