(** The foreign-database gateway storage method.

    Maps generic relation operations onto message exchanges with a
    {!Remote_server} (DDL attributes [server] and [relation] name the target).
    Record keys are the remote record identifiers. Undo information is logged
    locally and undone by sending compensating messages, so vetoed
    modifications and aborts behave exactly as for local storage; the cost
    estimator charges one message round trip per remote operation. *)

include Dmx_core.Intf.STORAGE_METHOD

val register : unit -> int
val id : unit -> int

val message_cost : float
(** I/O-unit charge per message round trip used by [estimate_scan]. *)
