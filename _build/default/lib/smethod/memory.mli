(** The main-memory storage method.

    The paper motivates "main memory data storage methods for selected high
    traffic relations" (p. 220). Records live in an in-process table keyed by
    a sequence number; no pages, no I/O. Operations are logged, so veto
    handling, savepoints and in-session abort work exactly as for durable
    methods, but contents do not survive a restart — restart undo of a loser
    transaction finds no state and is a no-op (testable undo). *)

include Dmx_core.Intf.STORAGE_METHOD

val register : unit -> int
val id : unit -> int

val reset_all : unit -> unit
(** Drop every in-memory relation's contents (simulates restart in tests). *)
