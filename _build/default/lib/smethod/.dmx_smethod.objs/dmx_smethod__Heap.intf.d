lib/smethod/heap.mli: Dmx_core
