lib/smethod/foreign.ml: Codec Cost Ctx Dmx_catalog Dmx_core Dmx_expr Dmx_value Dmx_wal Error Fmt Intf List Option Record Record_key Registry Remote_server Result Scan_help
