lib/smethod/btree_org.mli: Dmx_core
