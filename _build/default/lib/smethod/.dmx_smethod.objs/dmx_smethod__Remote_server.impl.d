lib/smethod/remote_server.ml: Dmx_value Fmt Hashtbl Int Map Record
