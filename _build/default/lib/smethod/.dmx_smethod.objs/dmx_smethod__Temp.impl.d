lib/smethod/temp.ml: Cost Dmx_catalog Dmx_core Dmx_expr Dmx_value Error Hashtbl Int Intf List Map Option Record Record_key Registry Scan_help
