lib/smethod/memory.ml: Codec Cost Ctx Dmx_catalog Dmx_core Dmx_expr Dmx_value Dmx_wal Error Fmt Hashtbl Int Intf List Map Record Record_key Registry Scan_help
