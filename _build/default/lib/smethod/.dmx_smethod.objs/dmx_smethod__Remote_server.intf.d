lib/smethod/remote_server.mli: Dmx_value Record
