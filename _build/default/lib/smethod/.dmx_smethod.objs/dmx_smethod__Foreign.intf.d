lib/smethod/foreign.mli: Dmx_core
