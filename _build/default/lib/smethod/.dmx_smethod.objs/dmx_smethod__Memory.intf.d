lib/smethod/memory.mli: Dmx_core
