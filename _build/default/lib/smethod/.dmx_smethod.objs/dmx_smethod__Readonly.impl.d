lib/smethod/readonly.ml: Array Buffer_pool Bytes Codec Cost Ctx Dmx_catalog Dmx_core Dmx_expr Dmx_page Dmx_value Dmx_wal Error Fmt Fun Intf List Record Record_key Registry Scan_help Slotted String
