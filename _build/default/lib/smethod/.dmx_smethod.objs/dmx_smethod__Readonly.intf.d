lib/smethod/readonly.mli: Dmx_catalog Dmx_core
