lib/smethod/temp.mli: Dmx_core
