(** Simulated remote database server.

    Substitute for the paper's foreign database (p. 221: a storage method may
    "support access to a foreign database by simulating relation accesses via
    (remote) accesses to relations in the foreign database"). The server is
    in-process but reachable *only* through the message protocol below; each
    request/response round trip is counted so benches and cost estimates can
    charge for it. *)

open Dmx_value

type t

val create : name:string -> t
(** Create (or return) the server registered under [name]. *)

val find : string -> t option
val message_count : t -> int
val reset_stats : t -> unit
val reset_all : unit -> unit

type request =
  | Create_rel of string
  | Drop_rel of string
  | Insert of string * Record.t
  | Update of string * int * Record.t
  | Delete of string * int
  | Fetch of string * int
  | Scan_next of string * int  (** first record with remote id > the given *)
  | Count of string

type response =
  | Ok_unit
  | Ok_id of int
  | Ok_record of Record.t option
  | Ok_scan of (int * Record.t) option
  | Ok_count of int
  | Remote_error of string

val send : t -> request -> response
