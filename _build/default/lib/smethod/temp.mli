(** The temporary-relation storage method.

    "Examples of storage methods include recoverable and temporary relations"
    (paper p. 221); the base system's temporary method is the paper's example
    of vector indexing. Contents are in-process and *unlogged*: operations
    write no undo records, so aborting a transaction leaves its temporary
    writes in place (the SQL temp-table convention) and they never participate
    in recovery. *)

include Dmx_core.Intf.STORAGE_METHOD

val register : unit -> int
val id : unit -> int
val reset_all : unit -> unit
