(** The heap storage method: records in slotted pages, RID record keys.

    The default recoverable storage method. Records live wherever they fit;
    record keys are page/slot addresses, so updates that no longer fit in
    place relocate the record and change its key (the architecture allows
    this: attached procedures receive both old and new keys).

    Undo discipline (testable, per the recovery policy): undo-insert deletes
    the RID when it still holds the inserted record; undo-delete reinstates
    the record in its original slot — guaranteed free because tombstones stay
    *pending* (unreusable) until the deleting transaction commits, at which
    point a deferred action releases them. *)

include Dmx_core.Intf.STORAGE_METHOD

val register : unit -> int
(** Register with the procedure vectors; returns the storage-method id.
    Idempotent. *)

val id : unit -> int
(** The registered id; raises if {!register} has not run. *)
