(** The write-once ("optical disk publishing") storage method.

    The paper motivates "special facilities to support (read-only) optical
    disk database publishing applications" (p. 220). Records may be appended
    while the relation is being mastered; {!seal} finalises it, after which
    every modification is refused at the generic interface with [Read_only] —
    simulating the write-once medium. Updates and deletes are refused even
    before sealing (the medium cannot rewrite). *)

include Dmx_core.Intf.STORAGE_METHOD

val register : unit -> int
val id : unit -> int

val seal : Dmx_core.Ctx.t -> Dmx_catalog.Descriptor.t -> unit
(** Extension-specific operation: finalise the published relation. Immediate
    and unlogged — seal when the mastering transaction is alone and about to
    commit. *)

val is_sealed : Dmx_catalog.Descriptor.t -> bool
