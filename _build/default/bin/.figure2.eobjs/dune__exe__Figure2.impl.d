bin/figure2.ml: Dmx_core Dmx_db Fmt List String
