bin/dmx_shell.mli:
