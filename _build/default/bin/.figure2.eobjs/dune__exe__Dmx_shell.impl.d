bin/dmx_shell.ml: Array Buffer Dmx_catalog Dmx_core Dmx_db Dmx_expr Dmx_query Dmx_value Fmt Fun List Option Record Record_key Schema String Sys Value
