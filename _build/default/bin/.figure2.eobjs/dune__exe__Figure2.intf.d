bin/figure2.mli:
