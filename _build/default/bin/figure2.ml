(* Figure 2 of the paper as a living artifact: prints the generic data
   management interfaces and the procedure-vector inventory of the running
   system — the direct operations, the procedurally attached (indirect)
   operations, and the common services.

   Run with: dune exec bin/figure2.exe *)

module Db = Dmx_db.Db
module Registry = Dmx_core.Registry

let line = String.make 72 '-'

let () =
  Db.register_defaults ();
  Dmx_core.Registry.freeze ();
  Fmt.pr "%s@." line;
  Fmt.pr "Generic Data Management Interfaces (cf. paper Figure 2)@.";
  Fmt.pr "%s@.@." line;

  Fmt.pr "DIRECT GENERIC OPERATIONS (per storage method, via operation vectors)@.";
  Fmt.pr "  create destroy insert update delete fetch-by-key key-sequential-scan@.";
  Fmt.pr "  key-fields record-count estimate-scan undo@.@.";
  Fmt.pr "  storage-method vector (id -> implementation):@.";
  List.iter
    (fun (id, name) -> Fmt.pr "    [%2d] %s@." id name)
    (Registry.storage_methods ());

  Fmt.pr "@.INDIRECT, PROCEDURALLY ATTACHED OPERATIONS (per attachment type)@.";
  Fmt.pr "  on-insert on-update on-delete (invoked as side effects of relation@.";
  Fmt.pr "  modification; may veto) + direct access-path operations:@.";
  Fmt.pr "  lookup-by-key key-sequential-scan estimate undo@.@.";
  Fmt.pr "  attachment vector (id -> implementation = descriptor slot):@.";
  List.iter
    (fun (id, name) -> Fmt.pr "    [%2d] %s@." id name)
    (Registry.attachments ());

  Fmt.pr "@.COMMON SERVICES@.";
  List.iter
    (fun s -> Fmt.pr "  - %s@." s)
    [
      "recovery log (LSN-ordered; drives extension undo for veto, partial \
       rollback, abort, restart)";
      "lock manager (IS/IX/S/SIX/X; relation + record granularity; \
       system-wide deadlock detection)";
      "transaction events (commit, before-prepare deferred-action queues, \
       scan close at termination, scan-position capture at savepoints)";
      "predicate evaluation (three-valued logic, user function registry, \
       evaluated while records are in the buffer pool)";
      "descriptor management (composite relation descriptor: storage-method \
       header + per-attachment-type fields; embedded in bound plans)";
      "buffer pool (pin/unpin, WAL-before-write)";
      "authorization (uniform across storage methods)";
      "bound-plan dependency tracking (invalidate + automatic re-translation)";
    ];
  Fmt.pr "@.registry frozen: extensions bind at the factory, before open.@."
