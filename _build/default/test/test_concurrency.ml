(* Logically interleaved transactions: lock conflicts surface under the
   no-wait policy, DDL excludes concurrent access, commits release locks. *)
open Dmx_core
open Test_util
module Ddl = Dmx_ddl.Ddl
module Relation = Dmx_core.Relation

let setup services =
  let ctx = Services.begin_txn services in
  let desc =
    check_ok "create"
      (Ddl.create_relation ctx ~name:"t" ~schema:emp_schema
         ~storage_method:"heap" ())
  in
  let keys =
    List.map
      (fun i -> check_ok "seed" (Relation.insert ctx desc (emp i "x" "d" i)))
      [ 1; 2; 3 ]
  in
  Services.commit services ctx;
  keys

let test_write_write_conflict () =
  let services = fresh_services () in
  let keys = setup services in
  let k = List.hd keys in
  let t1 = Services.begin_txn services in
  let t2 = Services.begin_txn services in
  let desc1 = check_ok "find" (Ddl.find_relation t1 "t") in
  let desc2 = check_ok "find" (Ddl.find_relation t2 "t") in
  (* t1 X-locks the record by updating it *)
  ignore (check_ok "t1 update" (Relation.update t1 desc1 k (emp 1 "t1" "d" 10)));
  (* t2's update of the same record conflicts (no-wait policy) *)
  (match Relation.update t2 desc2 k (emp 1 "t2" "d" 20) with
  | Error (Error.Lock_conflict { holders; _ }) ->
    Alcotest.(check (list int)) "holder is t1" [ t1.Ctx.txn.Dmx_txn.Txn.id ]
      holders
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "write-write conflict missed");
  (* a different record is free *)
  ignore
    (check_ok "t2 other record"
       (Relation.update t2 desc2 (List.nth keys 1) (emp 2 "t2" "d" 20)));
  (* after t1 commits, t2 can touch the record *)
  Services.commit services t1;
  ignore (check_ok "t2 after commit" (Relation.update t2 desc2 k (emp 1 "t2" "d" 30)));
  Services.commit services t2

let test_ddl_excludes_writers () =
  let services = fresh_services () in
  ignore (setup services);
  let t1 = Services.begin_txn services in
  let desc1 = check_ok "find" (Ddl.find_relation t1 "t") in
  ignore (check_ok "t1 insert" (Relation.insert t1 desc1 (emp 9 "x" "d" 9)));
  (* t2's index creation needs an X relation lock: blocked by t1's IX *)
  let t2 = Services.begin_txn services in
  (match
     Ddl.create_attachment t2 ~relation:"t" ~attachment_type:"btree_index"
       ~name:"pk" ~attrs:[ ("fields", "id") ] ()
   with
  | Error (Error.Lock_conflict _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok () -> Alcotest.fail "DDL proceeded under a writer");
  Services.abort services t2;
  Services.commit services t1;
  (* now it goes through *)
  let t3 = Services.begin_txn services in
  check_ok "after release"
    (Ddl.create_attachment t3 ~relation:"t" ~attachment_type:"btree_index"
       ~name:"pk" ~attrs:[ ("fields", "id") ] ());
  Services.commit services t3

let test_writer_blocks_ddl_and_vice_versa () =
  let services = fresh_services () in
  ignore (setup services);
  (* DDL holds X to commit: writers conflict meanwhile *)
  let t1 = Services.begin_txn services in
  check_ok "t1 index"
    (Ddl.create_attachment t1 ~relation:"t" ~attachment_type:"btree_index"
       ~name:"pk" ~attrs:[ ("fields", "id") ] ());
  let t2 = Services.begin_txn services in
  let desc2 = check_ok "find" (Ddl.find_relation t2 "t") in
  (match Relation.insert t2 desc2 (emp 8 "x" "d" 8) with
  | Error (Error.Lock_conflict _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "insert proceeded under DDL");
  Services.commit services t1;
  ignore (check_ok "after ddl" (Relation.insert t2 desc2 (emp 8 "x" "d" 8)));
  Services.commit services t2

let test_abort_releases_locks () =
  let services = fresh_services () in
  let keys = setup services in
  let k = List.hd keys in
  let t1 = Services.begin_txn services in
  let desc1 = check_ok "find" (Ddl.find_relation t1 "t") in
  ignore (check_ok "t1 update" (Relation.update t1 desc1 k (emp 1 "t1" "d" 10)));
  Services.abort services t1;
  let t2 = Services.begin_txn services in
  let desc2 = check_ok "find" (Ddl.find_relation t2 "t") in
  ignore (check_ok "t2 free" (Relation.update t2 desc2 k (emp 1 "t2" "d" 20)));
  (* and t1's change was undone first *)
  (match check_ok "fetch" (Relation.fetch t2 desc2 k ()) with
  | Some r -> Alcotest.check value_testable "t2's value" (vs "t2") r.(1)
  | None -> Alcotest.fail "record vanished");
  Services.commit services t2

let test_deadlock_detect_across_txns () =
  let services = fresh_services () in
  let keys = setup services in
  let ka = List.nth keys 0 and kb = List.nth keys 1 in
  let t1 = Services.begin_txn services in
  let t2 = Services.begin_txn services in
  let d1 = check_ok "find" (Ddl.find_relation t1 "t") in
  let d2 = check_ok "find" (Ddl.find_relation t2 "t") in
  ignore (check_ok "t1 a" (Relation.update t1 d1 ka (emp 1 "t1" "d" 1)));
  ignore (check_ok "t2 b" (Relation.update t2 d2 kb (emp 2 "t2" "d" 2)));
  (* both now *enqueue* for each other's record: a cycle the detector finds *)
  let locks = services.Services.locks in
  let res key =
    Dmx_lock.Lock_table.Record
      (d1.Dmx_catalog.Descriptor.rel_id,
       Bytes.to_string (Dmx_value.Record_key.encode key))
  in
  ignore
    (Dmx_lock.Lock_table.enqueue locks ~txid:t1.Ctx.txn.Dmx_txn.Txn.id
       ~mode:Dmx_lock.Lock_mode.X (res kb));
  ignore
    (Dmx_lock.Lock_table.enqueue locks ~txid:t2.Ctx.txn.Dmx_txn.Txn.id
       ~mode:Dmx_lock.Lock_mode.X (res ka));
  (match Dmx_lock.Deadlock.detect locks with
  | Some victim ->
    Alcotest.(check int) "youngest txn is the victim"
      t2.Ctx.txn.Dmx_txn.Txn.id victim
  | None -> Alcotest.fail "deadlock missed");
  (* resolution aborts the victim and breaks the cycle: t1 is granted *)
  (match Services.resolve_deadlock services with
  | Some victim ->
    Alcotest.(check int) "resolved victim" t2.Ctx.txn.Dmx_txn.Txn.id victim
  | None -> Alcotest.fail "resolution found no cycle");
  Alcotest.(check bool) "victim aborted" false
    (Dmx_txn.Txn.is_active t2.Ctx.txn);
  Alcotest.(check bool) "t1 unblocked" true
    (Dmx_lock.Lock_table.is_granted locks ~txid:t1.Ctx.txn.Dmx_txn.Txn.id
       (res kb));
  Alcotest.(check (option int)) "no cycle remains" None
    (Dmx_lock.Deadlock.detect locks);
  Services.abort services t1

let suite =
  [
    Alcotest.test_case "write-write conflict (no-wait)" `Quick
      test_write_write_conflict;
    Alcotest.test_case "DDL excluded by writers" `Quick
      test_ddl_excludes_writers;
    Alcotest.test_case "writers excluded by DDL" `Quick
      test_writer_blocks_ddl_and_vice_versa;
    Alcotest.test_case "abort releases locks + undoes" `Quick
      test_abort_releases_locks;
    Alcotest.test_case "deadlock detection across transactions" `Quick
      test_deadlock_detect_across_txns;
  ]
