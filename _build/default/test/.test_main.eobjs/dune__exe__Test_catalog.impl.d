test/test_catalog.ml: Alcotest Attrlist Catalog Codec Descriptor Dmx_catalog Dmx_value Filename Fun Gen List QCheck QCheck_alcotest Schema Sys Test_util
