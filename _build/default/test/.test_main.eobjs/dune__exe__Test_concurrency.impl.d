test/test_concurrency.ml: Alcotest Array Bytes Ctx Dmx_catalog Dmx_core Dmx_ddl Dmx_lock Dmx_txn Dmx_value Error List Services Test_util
