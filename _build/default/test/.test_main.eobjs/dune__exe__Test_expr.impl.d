test/test_expr.ml: Alcotest Analyze Array Dmx_expr Dmx_value Eval Expr Fmt List Parse Test_util Value
