test/test_integration.ml: Alcotest Array Dmx_attach Dmx_core Dmx_ddl Dmx_page Dmx_smethod Dmx_value Error Int64 Intf List Option Record_key Registry Scan_help Schema Services Test_util Value
