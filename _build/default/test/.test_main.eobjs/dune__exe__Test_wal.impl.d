test/test_wal.ml: Alcotest Dmx_value Dmx_wal Filename Fmt Fun List Log_record QCheck QCheck_alcotest Recovery Sys Unix Wal
