test/test_btree.ml: Alcotest Array Btree Buffer_pool Char Disk Dmx_btree Dmx_page Dmx_value Fmt Int Int64 Io_stats List Map Option QCheck QCheck_alcotest Random String Test_util Value
