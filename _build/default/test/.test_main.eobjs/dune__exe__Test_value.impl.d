test/test_value.ml: Alcotest Codec Dmx_value List Record Record_key Schema Test_util Value
