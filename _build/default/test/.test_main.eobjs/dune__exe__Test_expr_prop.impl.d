test/test_expr_prop.ml: Analyze Array Dmx_expr Dmx_value Eval Expr Fmt Gen List Parse QCheck QCheck_alcotest Test_util Value
