test/test_attach.ml: Alcotest Array Dmx_attach Dmx_catalog Dmx_core Dmx_ddl Dmx_value Error Fmt Int64 List Option Registry Schema Services Test_util Value
