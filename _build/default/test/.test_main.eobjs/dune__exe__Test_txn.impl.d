test/test_txn.ml: Alcotest Dmx_lock Dmx_txn Dmx_wal List Tmap Txn Txn_mgr
