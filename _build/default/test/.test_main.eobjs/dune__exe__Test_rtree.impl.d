test/test_rtree.ml: Alcotest Buffer_pool Disk Dmx_page Dmx_rtree Gen Int List QCheck QCheck_alcotest Rect Rtree Set
