test/test_page.ml: Alcotest Buffer_pool Bytes Disk Dmx_page Filename Fmt Hashtbl Io_stats List Option QCheck QCheck_alcotest Slotted String Sys
