test/test_recovery.ml: Alcotest Array Dmx_attach Dmx_core Dmx_ddl Dmx_page Dmx_smethod Dmx_wal Error Filename Fmt Fun List Option Registry Services Sys Test_util Unix
