test/test_util.ml: Alcotest Array Dmx_attach Dmx_catalog Dmx_core Dmx_smethod Dmx_value Fmt Lazy List Record Record_key Schema Value
