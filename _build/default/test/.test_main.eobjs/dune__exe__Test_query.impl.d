test/test_query.ml: Alcotest Array Astring_contains Dmx_authz Dmx_core Dmx_db Dmx_query Dmx_value Fmt List Schema String Test_util Value
