test/test_authz.ml: Alcotest Authz Dmx_authz Dmx_core Filename List Sys
