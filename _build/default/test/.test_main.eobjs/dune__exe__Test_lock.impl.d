test/test_lock.ml: Alcotest Deadlock Dmx_lock List Lock_mode Lock_table
