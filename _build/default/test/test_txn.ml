open Dmx_txn
module LR = Dmx_wal.Log_record

let make_mgr () =
  let wal = Dmx_wal.Wal.in_memory () in
  let locks = Dmx_lock.Lock_table.create () in
  (Txn_mgr.create ~wal ~locks (), wal, locks)

let test_begin_commit () =
  let mgr, wal, locks = make_mgr () in
  Txn_mgr.set_undo_dispatch mgr (fun _ _ -> ());
  let txn = Txn_mgr.begin_txn mgr in
  Alcotest.(check bool) "active" true (Txn.is_active txn);
  ignore
    (Dmx_lock.Lock_table.acquire locks ~txid:txn.Txn.id
       ~mode:Dmx_lock.Lock_mode.X (Dmx_lock.Lock_table.Relation 1));
  Txn_mgr.commit mgr txn;
  Alcotest.(check bool) "committed" true (txn.Txn.state = Txn.Committed);
  (* locks released at commit *)
  Alcotest.(check int) "no locks" 0
    (List.length (Dmx_lock.Lock_table.locked_resources locks txn.Txn.id));
  (* Begin + Commit in the log *)
  let kinds = Dmx_wal.Wal.fold wal ~init:[] ~f:(fun acc r -> r.LR.kind :: acc) in
  Alcotest.(check bool) "log shape" true
    (List.rev kinds = [ LR.Begin; LR.Commit ])

let test_undo_order_on_abort () =
  let mgr, _, _ = make_mgr () in
  let undone = ref [] in
  Txn_mgr.set_undo_dispatch mgr (fun _ r ->
      match r.LR.kind with
      | LR.Ext { data; _ } -> undone := data :: !undone
      | _ -> ());
  let txn = Txn_mgr.begin_txn mgr in
  List.iter
    (fun d ->
      ignore (Txn_mgr.log_ext mgr txn ~source:(LR.Smethod 0) ~rel_id:1 ~data:d))
    [ "a"; "b"; "c" ];
  Txn_mgr.abort mgr txn;
  (* undone newest-first; !undone accumulates reversed -> chronological *)
  Alcotest.(check (list string)) "undo order" [ "a"; "b"; "c" ] !undone;
  Alcotest.(check int) "undo count" 3 (Txn_mgr.stats_undo_count mgr)

let test_partial_rollback_boundaries () =
  let mgr, _, _ = make_mgr () in
  let undone = ref [] in
  Txn_mgr.set_undo_dispatch mgr (fun _ r ->
      match r.LR.kind with
      | LR.Ext { data; _ } -> undone := data :: !undone
      | _ -> ());
  let txn = Txn_mgr.begin_txn mgr in
  ignore (Txn_mgr.log_ext mgr txn ~source:(LR.Smethod 0) ~rel_id:1 ~data:"pre");
  Txn_mgr.savepoint mgr txn "sp";
  ignore (Txn_mgr.log_ext mgr txn ~source:(LR.Smethod 0) ~rel_id:1 ~data:"post1");
  ignore (Txn_mgr.log_ext mgr txn ~source:(LR.Smethod 0) ~rel_id:1 ~data:"post2");
  Txn_mgr.rollback_to mgr txn "sp";
  Alcotest.(check (list string)) "only post work undone" [ "post1"; "post2" ]
    !undone;
  Alcotest.(check bool) "still active" true (Txn.is_active txn);
  (* the savepoint survives and is reusable *)
  ignore (Txn_mgr.log_ext mgr txn ~source:(LR.Smethod 0) ~rel_id:1 ~data:"post3");
  undone := [];
  Txn_mgr.rollback_to mgr txn "sp";
  Alcotest.(check (list string)) "reused savepoint" [ "post3" ] !undone;
  (* a full abort now undoes only "pre" (the rest is compensated) *)
  undone := [];
  Txn_mgr.abort mgr txn;
  Alcotest.(check (list string)) "abort undoes the rest" [ "pre" ] !undone

let test_unknown_savepoint () =
  let mgr, _, _ = make_mgr () in
  Txn_mgr.set_undo_dispatch mgr (fun _ _ -> ());
  let txn = Txn_mgr.begin_txn mgr in
  match Txn_mgr.rollback_to mgr txn "nope" with
  | exception Not_found -> Txn_mgr.abort mgr txn
  | () -> Alcotest.fail "unknown savepoint accepted"

let test_deferred_queues () =
  let mgr, _, _ = make_mgr () in
  Txn_mgr.set_undo_dispatch mgr (fun _ _ -> ());
  let log = ref [] in
  let txn = Txn_mgr.begin_txn mgr in
  Txn.defer txn Txn.On_commit (fun () -> log := "commit1" :: !log);
  Txn.defer txn Txn.Before_prepare (fun () -> log := "prep1" :: !log);
  Txn.defer txn Txn.On_commit (fun () -> log := "commit2" :: !log);
  Txn.defer txn Txn.On_abort (fun () -> log := "abort!" :: !log);
  Txn_mgr.commit mgr txn;
  (* prepare actions before commit actions, FIFO within a queue; abort
     actions dropped *)
  Alcotest.(check (list string)) "order" [ "prep1"; "commit1"; "commit2" ]
    (List.rev !log)

let test_before_prepare_veto_aborts () =
  let mgr, _, _ = make_mgr () in
  let undone = ref 0 in
  Txn_mgr.set_undo_dispatch mgr (fun _ _ -> incr undone);
  let txn = Txn_mgr.begin_txn mgr in
  ignore (Txn_mgr.log_ext mgr txn ~source:(LR.Smethod 0) ~rel_id:1 ~data:"x");
  let abort_ran = ref false in
  Txn.defer txn Txn.On_abort (fun () -> abort_ran := true);
  Txn.defer txn Txn.Before_prepare (fun () -> failwith "deferred veto");
  (match Txn_mgr.commit mgr txn with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "vetoed commit succeeded");
  Alcotest.(check bool) "aborted" true (txn.Txn.state = Txn.Aborted);
  Alcotest.(check int) "work undone" 1 !undone;
  Alcotest.(check bool) "abort queue drained" true !abort_ran

let test_scan_registration () =
  let mgr, _, _ = make_mgr () in
  Txn_mgr.set_undo_dispatch mgr (fun _ _ -> ());
  let txn = Txn_mgr.begin_txn mgr in
  let closed = ref 0 in
  let position = ref 10 in
  let reg =
    {
      Txn.scan_close = (fun () -> incr closed);
      scan_capture =
        (fun () ->
          let saved = !position in
          fun () -> position := saved);
    }
  in
  let _id1 = Txn.register_scan txn reg in
  let id2 = Txn.register_scan txn reg in
  (* savepoint captures both positions *)
  Txn_mgr.savepoint mgr txn "sp";
  position := 99;
  Txn_mgr.rollback_to mgr txn "sp";
  Alcotest.(check int) "position restored" 10 !position;
  (* closing one scan early unregisters it *)
  Txn.unregister_scan txn id2;
  Txn_mgr.commit mgr txn;
  Alcotest.(check int) "remaining scan closed at txn end" 1 !closed

let test_undo_dispatch_missing () =
  let mgr, _, _ = make_mgr () in
  let txn = Txn_mgr.begin_txn mgr in
  ignore (Txn_mgr.log_ext mgr txn ~source:(LR.Smethod 0) ~rel_id:1 ~data:"x");
  match Txn_mgr.abort mgr txn with
  | exception Txn_mgr.Undo_dispatch_missing -> ()
  | () -> Alcotest.fail "abort without an undo dispatcher"

let test_tmap () =
  let k1 : int Tmap.key = Tmap.new_key "k1" in
  let k2 : string Tmap.key = Tmap.new_key "k2" in
  let m = Tmap.add k1 42 (Tmap.add k2 "x" Tmap.empty) in
  Alcotest.(check (option int)) "int key" (Some 42) (Tmap.find k1 m);
  Alcotest.(check (option string)) "string key" (Some "x") (Tmap.find k2 m);
  let m = Tmap.remove k1 m in
  Alcotest.(check (option int)) "removed" None (Tmap.find k1 m);
  Alcotest.(check bool) "other kept" true (Tmap.mem k2 m);
  (* distinct keys of the same type do not collide *)
  let k3 : int Tmap.key = Tmap.new_key "k3" in
  let m = Tmap.add k1 1 (Tmap.add k3 3 Tmap.empty) in
  Alcotest.(check (option int)) "k1" (Some 1) (Tmap.find k1 m);
  Alcotest.(check (option int)) "k3" (Some 3) (Tmap.find k3 m)

let test_txid_continuity_after_restart () =
  let wal = Dmx_wal.Wal.in_memory () in
  let locks = Dmx_lock.Lock_table.create () in
  let mgr = Txn_mgr.create ~wal ~locks () in
  Txn_mgr.set_undo_dispatch mgr (fun _ _ -> ());
  let t1 = Txn_mgr.begin_txn mgr in
  let t2 = Txn_mgr.begin_txn mgr in
  Txn_mgr.commit mgr t1;
  Txn_mgr.commit mgr t2;
  (* a new manager over the same log continues the id sequence *)
  let mgr2 = Txn_mgr.create ~wal ~locks () in
  Txn_mgr.set_undo_dispatch mgr2 (fun _ _ -> ());
  let t3 = Txn_mgr.begin_txn mgr2 in
  Alcotest.(check bool) "ids continue" true (t3.Txn.id > t2.Txn.id)

let suite =
  [
    Alcotest.test_case "begin/commit lifecycle" `Quick test_begin_commit;
    Alcotest.test_case "abort undoes newest-first" `Quick
      test_undo_order_on_abort;
    Alcotest.test_case "partial rollback boundaries" `Quick
      test_partial_rollback_boundaries;
    Alcotest.test_case "unknown savepoint" `Quick test_unknown_savepoint;
    Alcotest.test_case "deferred-action queues" `Quick test_deferred_queues;
    Alcotest.test_case "before-prepare veto aborts" `Quick
      test_before_prepare_veto_aborts;
    Alcotest.test_case "scan registration + capture" `Quick
      test_scan_registration;
    Alcotest.test_case "undo dispatcher required" `Quick
      test_undo_dispatch_missing;
    Alcotest.test_case "typed per-txn state (Tmap)" `Quick test_tmap;
    Alcotest.test_case "txid continuity after restart" `Quick
      test_txid_continuity_after_restart;
  ]
