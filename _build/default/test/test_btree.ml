open Dmx_value
open Dmx_page
open Dmx_btree
open Test_util

let make_tree () =
  let d = Disk.in_memory () in
  let bp = Buffer_pool.create ~capacity:128 d in
  Btree.create bp

let k n = [| vi n |]

let test_insert_find () =
  let t = make_tree () in
  for i = 1 to 500 do
    match Btree.insert t ~key:(k i) ~payload:(string_of_int i) with
    | `Ok -> ()
    | `Duplicate -> Alcotest.failf "dup at %d" i
  done;
  Alcotest.(check int) "count" 500 (Btree.count t);
  Alcotest.(check bool) "height grew" true (Btree.height t > 1);
  for i = 1 to 500 do
    Alcotest.(check (option string))
      (Fmt.str "find %d" i)
      (Some (string_of_int i))
      (Btree.find t ~key:(k i))
  done;
  Alcotest.(check (option string)) "absent" None (Btree.find t ~key:(k 501));
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_duplicate () =
  let t = make_tree () in
  ignore (Btree.insert t ~key:(k 1) ~payload:"a");
  Alcotest.(check bool) "dup refused" true
    (Btree.insert t ~key:(k 1) ~payload:"b" = `Duplicate);
  Alcotest.(check bool) "replace" true
    (Btree.replace t ~key:(k 1) ~payload:"b" = `Replaced);
  Alcotest.(check (option string)) "replaced" (Some "b") (Btree.find t ~key:(k 1))

let test_delete () =
  let t = make_tree () in
  for i = 1 to 300 do
    ignore (Btree.insert t ~key:(k i) ~payload:(string_of_int i))
  done;
  for i = 1 to 300 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "delete" true (Btree.delete t ~key:(k i))
  done;
  Alcotest.(check bool) "delete absent" false (Btree.delete t ~key:(k 2));
  Alcotest.(check int) "count after" 150 (Btree.count t);
  for i = 1 to 300 do
    let expect = if i mod 2 = 0 then None else Some (string_of_int i) in
    Alcotest.(check (option string)) (Fmt.str "post %d" i) expect
      (Btree.find t ~key:(k i))
  done;
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_random_order () =
  let t = make_tree () in
  let n = 1000 in
  let perm = Array.init n (fun i -> i) in
  let st = Random.State.make [| 42 |] in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  Array.iter
    (fun i -> ignore (Btree.insert t ~key:(k i) ~payload:(string_of_int i)))
    perm;
  (* iteration is sorted *)
  let last = ref (-1) in
  Btree.iter t (fun key _ ->
      let v = Int64.to_int (Option.get (Value.to_int key.(0))) in
      Alcotest.(check bool) "ascending" true (v > !last);
      last := v);
  Alcotest.(check int) "all there" n (Btree.count t);
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_cursor_range () =
  let t = make_tree () in
  for i = 0 to 99 do
    ignore (Btree.insert t ~key:(k i) ~payload:(string_of_int i))
  done;
  let collect c =
    let rec loop acc =
      match Btree.next c with
      | None -> List.rev acc
      | Some (key, _) ->
        loop (Int64.to_int (Option.get (Value.to_int key.(0))) :: acc)
    in
    loop []
  in
  let got = collect (Btree.cursor ~lo:(Btree.Incl (k 10)) ~hi:(Btree.Excl (k 15)) t) in
  Alcotest.(check (list int)) "range" [ 10; 11; 12; 13; 14 ] got;
  let got = collect (Btree.cursor ~lo:(Btree.Excl (k 95)) t) in
  Alcotest.(check (list int)) "open hi" [ 96; 97; 98; 99 ] got

let test_cursor_prefix () =
  let t = make_tree () in
  List.iter
    (fun (a, b) ->
      ignore
        (Btree.insert t ~key:[| vs a; vi b |] ~payload:(a ^ string_of_int b)))
    [ ("eng", 1); ("eng", 2); ("ops", 1); ("eng", 3); ("hr", 9) ];
  let c =
    Btree.cursor ~lo:(Btree.Incl [| vs "eng" |]) ~hi:(Btree.Incl [| vs "eng" |]) t
  in
  let rec collect acc =
    match Btree.next c with
    | None -> List.rev acc
    | Some (_, p) -> collect (p :: acc)
  in
  Alcotest.(check (list string)) "prefix scan" [ "eng1"; "eng2"; "eng3" ]
    (collect [])

let test_cursor_survives_delete () =
  let t = make_tree () in
  for i = 0 to 20 do
    ignore (Btree.insert t ~key:(k i) ~payload:(string_of_int i))
  done;
  let c = Btree.cursor t in
  let step () =
    match Btree.next c with
    | Some (key, _) -> Int64.to_int (Option.get (Value.to_int key.(0)))
    | None -> Alcotest.fail "unexpected end"
  in
  Alcotest.(check int) "first" 0 (step ());
  Alcotest.(check int) "second" 1 (step ());
  (* Delete the item the cursor is on: scan is positioned just after it. *)
  ignore (Btree.delete t ~key:(k 1));
  Alcotest.(check int) "after deleted current" 2 (step ());
  (* Delete ahead of the cursor too. *)
  ignore (Btree.delete t ~key:(k 3));
  Alcotest.(check int) "skips deleted ahead" 4 (step ())

let test_cursor_capture_restore () =
  let t = make_tree () in
  for i = 0 to 9 do
    ignore (Btree.insert t ~key:(k i) ~payload:(string_of_int i))
  done;
  let c = Btree.cursor t in
  ignore (Btree.next c);
  ignore (Btree.next c);
  let saved = Btree.position c in
  ignore (Btree.next c);
  ignore (Btree.next c);
  Btree.seek c saved;
  match Btree.next c with
  | Some (key, _) ->
    Alcotest.(check int) "resumes after saved position" 2
      (Int64.to_int (Option.get (Value.to_int key.(0))))
  | None -> Alcotest.fail "cursor exhausted"

let test_large_payloads () =
  let t = make_tree () in
  (* payloads near page capacity force frequent splits *)
  for i = 0 to 63 do
    ignore (Btree.insert t ~key:(k i) ~payload:(String.make 900 (Char.chr (65 + (i mod 26)))))
  done;
  Alcotest.(check int) "count" 64 (Btree.count t);
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_string_keys_order () =
  let t = make_tree () in
  let words = [ "pear"; "apple"; "fig"; "grape"; "banana"; "kiwi" ] in
  List.iter (fun w -> ignore (Btree.insert t ~key:[| vs w |] ~payload:w)) words;
  let got = ref [] in
  Btree.iter t (fun _ p -> got := p :: !got);
  Alcotest.(check (list string)) "sorted strings"
    (List.sort String.compare words)
    (List.rev !got)

(* qcheck property: model-based comparison against a Map *)
let prop_model =
  QCheck.Test.make ~name:"btree matches Map model" ~count:60
    QCheck.(
      list (pair (int_range 0 200) (oneofl [ `Ins; `Del ])))
    (fun ops ->
      let t = make_tree () in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      List.iter
        (fun (i, op) ->
          match op with
          | `Ins ->
            let payload = string_of_int i in
            (match Btree.insert t ~key:(k i) ~payload with
            | `Ok -> model := M.add i payload !model
            | `Duplicate -> assert (M.mem i !model))
          | `Del ->
            let deleted = Btree.delete t ~key:(k i) in
            assert (deleted = M.mem i !model);
            model := M.remove i !model)
        ops;
      (match Btree.check_invariants t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      let tree_list = ref [] in
      Btree.iter t (fun key p ->
          tree_list := (Int64.to_int (Option.get (Value.to_int key.(0))), p) :: !tree_list);
      List.rev !tree_list = M.bindings !model)

(* Under a 4-frame pool every operation evicts and reloads pages; contents
   and invariants must survive the churn. *)
let test_tiny_pool_stress () =
  let d = Disk.in_memory () in
  let bp = Buffer_pool.create ~capacity:4 d in
  let t = Btree.create bp in
  let n = 2000 in
  for i = 0 to n - 1 do
    let key = (i * 7919) mod n in
    ignore (Btree.insert t ~key:(k key) ~payload:(string_of_int key))
  done;
  for i = 0 to (n / 2) - 1 do
    ignore (Btree.delete t ~key:(k (i * 2)))
  done;
  (match Btree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "count under eviction" (n / 2) (Btree.count t);
  for i = 0 to n - 1 do
    let expect = if i mod 2 = 0 then None else Some (string_of_int i) in
    if i mod 37 = 0 || i mod 37 = 1 then
      Alcotest.(check (option string)) (Fmt.str "probe %d" i) expect
        (Btree.find t ~key:(k i))
  done;
  Alcotest.(check bool) "pages really evicted" true
    ((Disk.stats d).Io_stats.page_writes > 100)

let suite =
  [
    Alcotest.test_case "insert + find (500)" `Quick test_insert_find;
    Alcotest.test_case "tiny buffer pool stress" `Quick test_tiny_pool_stress;
    Alcotest.test_case "duplicates and replace" `Quick test_duplicate;
    Alcotest.test_case "delete half" `Quick test_delete;
    Alcotest.test_case "random insertion order (1000)" `Quick test_random_order;
    Alcotest.test_case "cursor ranges" `Quick test_cursor_range;
    Alcotest.test_case "cursor prefix bounds" `Quick test_cursor_prefix;
    Alcotest.test_case "cursor survives deletes" `Quick
      test_cursor_survives_delete;
    Alcotest.test_case "cursor capture/restore" `Quick
      test_cursor_capture_restore;
    Alcotest.test_case "large payloads split" `Quick test_large_payloads;
    Alcotest.test_case "string key order" `Quick test_string_keys_order;
    QCheck_alcotest.to_alcotest prop_model;
  ]
