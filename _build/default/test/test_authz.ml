open Dmx_authz
module Error = Dmx_core.Error

let test_owner_and_grants () =
  let a = Authz.create () in
  Authz.grant_all a ~user:"alice" ~rel_id:1;
  (match Authz.check a ~user:"alice" ~priv:Authz.Control ~rel_id:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "owner lacks control");
  (match Authz.check a ~user:"bob" ~priv:Authz.Select ~rel_id:1 with
  | Error (Error.Authorization_denied _) -> ()
  | _ -> Alcotest.fail "bob read without a grant");
  (* alice (CONTROL) grants bob SELECT *)
  (match
     Authz.grant a ~granter:"alice" ~user:"bob" ~privs:[ Authz.Select ]
       ~rel_id:1
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "grant failed: %s" (Error.to_string e));
  (match Authz.check a ~user:"bob" ~priv:Authz.Select ~rel_id:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "grant ineffective");
  (* bob cannot grant onward without CONTROL *)
  (match
     Authz.grant a ~granter:"bob" ~user:"carol" ~privs:[ Authz.Select ]
       ~rel_id:1
   with
  | Error (Error.Authorization_denied _) -> ()
  | _ -> Alcotest.fail "bob granted without control");
  (* revoke works *)
  ignore
    (Authz.revoke a ~granter:"alice" ~user:"bob" ~privs:[ Authz.Select ]
       ~rel_id:1);
  match Authz.check a ~user:"bob" ~priv:Authz.Select ~rel_id:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "revoke ineffective"

let test_admin_and_scoping () =
  let a = Authz.create () in
  Authz.add_admin a "root";
  (match Authz.check a ~user:"root" ~priv:Authz.Delete ~rel_id:42 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "admin denied");
  Authz.grant_all a ~user:"alice" ~rel_id:1;
  (* privileges are per relation *)
  (match Authz.check a ~user:"alice" ~priv:Authz.Select ~rel_id:2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "privilege leaked across relations");
  (* dropping a relation forgets its grants *)
  Authz.drop_relation a ~rel_id:1;
  Alcotest.(check (list string)) "grants gone" []
    (List.map Authz.priv_to_string (Authz.privileges a ~user:"alice" ~rel_id:1))

let test_persistence () =
  let path = Filename.temp_file "dmx_authz" ".dmx" in
  Sys.remove path;
  let a = Authz.create ~path () in
  Authz.add_admin a "root";
  Authz.grant_all a ~user:"alice" ~rel_id:3;
  ignore
    (Authz.grant a ~granter:"alice" ~user:"bob"
       ~privs:[ Authz.Select; Authz.Insert ] ~rel_id:3);
  Authz.save a;
  let a2 = Authz.load ~path in
  Alcotest.(check bool) "admin persisted" true (Authz.is_admin a2 "root");
  Alcotest.(check (list string)) "bob's privileges"
    [ "SELECT"; "INSERT" ]
    (List.map Authz.priv_to_string (Authz.privileges a2 ~user:"bob" ~rel_id:3)
    |> List.sort (fun a b -> compare b a));
  Sys.remove path

let suite =
  [
    Alcotest.test_case "owner, grants, revokes" `Quick test_owner_and_grants;
    Alcotest.test_case "admins and per-relation scoping" `Quick
      test_admin_and_scoping;
    Alcotest.test_case "persistence" `Quick test_persistence;
  ]
