open Dmx_value
open Dmx_expr
open Test_util

let r = emp 7 "Bob" "eng" 100

let t_truth expect expr =
  Alcotest.(check string)
    (Expr.to_string expr) expect
    (Fmt.str "%a" Eval.pp_truth (Eval.truth r expr))

let test_three_valued () =
  t_truth "TRUE" Expr.(eq (field 0) (cint 7));
  t_truth "FALSE" Expr.(eq (field 0) (cint 8));
  t_truth "UNKNOWN" Expr.(eq (field 0) (Const Value.Null));
  (* AND/OR short-circuit truth tables with UNKNOWN *)
  t_truth "FALSE" Expr.(Const Value.Null && fals);
  t_truth "UNKNOWN" Expr.(Const Value.Null && tru);
  t_truth "TRUE" Expr.(Const Value.Null || tru);
  t_truth "UNKNOWN" Expr.(Const Value.Null || fals);
  t_truth "UNKNOWN" Expr.(not_ (Const Value.Null))

let test_null_propagation () =
  Alcotest.check value_testable "arith null"
    Value.Null
    (Eval.eval r Expr.(Arith (Add, Const Value.Null, cint 1)));
  Alcotest.check value_testable "func null" Value.Null
    (Eval.eval r Expr.(Call ("abs", [ Const Value.Null ])));
  Alcotest.(check bool) "is_null" true
    (Eval.test r Expr.(Is_null (Const Value.Null)))

let test_arith () =
  Alcotest.check value_testable "int add" (vi 107)
    (Eval.eval r Expr.(Arith (Add, field 0, field 3)));
  Alcotest.check value_testable "mixed promotes" (vf 8.5)
    (Eval.eval r Expr.(Arith (Add, field 0, cfloat 1.5)));
  Alcotest.check value_testable "concat" (vs "Bobeng")
    (Eval.eval r Expr.(Arith (Add, field 1, field 2)));
  match Eval.eval r Expr.(Arith (Div, cint 1, cint 0)) with
  | exception Eval.Error _ -> ()
  | v -> Alcotest.failf "div by zero gave %a" Value.pp v

let test_like () =
  Alcotest.(check bool) "%" true (Eval.like_match ~pattern:"B%" "Bob");
  Alcotest.(check bool) "_" true (Eval.like_match ~pattern:"B_b" "Bob");
  Alcotest.(check bool) "literal" false (Eval.like_match ~pattern:"bob" "Bob");
  Alcotest.(check bool) "%%x" true (Eval.like_match ~pattern:"%o%" "Bob");
  Alcotest.(check bool) "empty pattern" false (Eval.like_match ~pattern:"" "x");
  Alcotest.(check bool) "both empty" true (Eval.like_match ~pattern:"" "")

let test_in_between () =
  Alcotest.(check bool) "in hit" true
    (Eval.test r Expr.(In_list (field 0, [ vi 1; vi 7 ])));
  t_truth "UNKNOWN" Expr.(In_list (field 0, [ vi 1; Value.Null ]));
  t_truth "TRUE" Expr.(In_list (field 0, [ vi 7; Value.Null ]));
  Alcotest.(check bool) "between" true
    (Eval.test r Expr.(Between (field 3, cint 50, cint 150)))

let test_params () =
  Alcotest.(check bool) "param" true
    (Eval.test ~params:[| vi 7 |] r Expr.(eq (field 0) (Param 0)))

let test_spatial_funcs () =
  let encl a = Expr.Call ("encloses", a) in
  Alcotest.(check bool) "encloses yes" true
    (Eval.test [||]
       (encl
          Expr.[
            cfloat 0.; cfloat 0.; cfloat 10.; cfloat 10.;
            cfloat 1.; cfloat 1.; cfloat 2.; cfloat 2.;
          ]));
  Alcotest.(check bool) "encloses no" false
    (Eval.test [||]
       (encl
          Expr.[
            cfloat 0.; cfloat 0.; cfloat 10.; cfloat 10.;
            cfloat 5.; cfloat 5.; cfloat 20.; cfloat 6.;
          ]))

let test_expr_codec () =
  let s = emp_schema in
  let exprs =
    [
      Parse.parse_exn s "id = 7 AND salary > 50";
      Parse.parse_exn s "name LIKE 'B%' OR dept IN ('eng','ops')";
      Parse.parse_exn s "salary BETWEEN 1 AND 100 AND NOT (id IS NULL)";
      Parse.parse_exn s "abs(salary - 200) < ?0";
    ]
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Expr.to_string e) true
        (Expr.equal e (Expr.decode (Expr.encode e))))
    exprs

let test_parse_eval () =
  let s = emp_schema in
  let t src expect =
    Alcotest.(check bool) src expect (Eval.test r (Parse.parse_exn s src))
  in
  t "id = 7" true;
  t "ID = 7" true;
  t "id <> 7" false;
  t "salary >= 100 AND dept = 'eng'" true;
  t "name LIKE 'B_b'" true;
  t "salary / 2 = 50" true;
  t "salary % 7 = 2" true;
  t "-salary < 0" true;
  t "id IN (1, 2, 7)" true;
  t "name IS NOT NULL" true;
  t "NOT name IS NULL" true;
  t "lower(name) = 'bob'" true;
  t "(id = 1 OR id = 7) AND salary BETWEEN 99 AND 101" true

let test_parse_errors () =
  let s = emp_schema in
  List.iter
    (fun src ->
      match Parse.parse s src with
      | Error _ -> ()
      | Ok e -> Alcotest.failf "parsed %S as %s" src (Expr.to_string e))
    [ "nosuchcol = 1"; "id = "; "id = 'unterminated"; "id ="; "(id = 1"; "id = 1 extra" ]

let test_conjuncts_sargs () =
  let s = emp_schema in
  let e = Parse.parse_exn s "id = 7 AND salary > 50 AND name LIKE 'B%'" in
  Alcotest.(check int) "conjuncts" 3 (List.length (Analyze.conjuncts e));
  let sargs = Analyze.sargs e in
  Alcotest.(check int) "sargs" 2 (List.length sargs);
  (* reversed orientation *)
  let e2 = Parse.parse_exn s "7 = id" in
  match Analyze.sargs e2 with
  | [ Analyze.Eq (0, _) ] -> ()
  | _ -> Alcotest.fail "flipped equality not recognised"

let test_match_key () =
  let s = emp_schema in
  let key_fields = [| 2; 0 |] in
  (* dept, id composed key *)
  let m =
    Analyze.match_key ~key_fields
      (Parse.parse_exn s "dept = 'eng' AND id > 3 AND salary > 10")
  in
  Alcotest.(check int) "eq prefix" 1 m.Analyze.eq_prefix;
  Alcotest.(check int) "range bounds" 1 (List.length m.Analyze.range_on_next);
  Alcotest.(check int) "residual" 1 (List.length m.Analyze.residual);
  match
    Analyze.key_range ~key_fields
      (Parse.parse_exn s "dept = 'eng' AND id > 3 AND salary > 10")
  with
  | Some (eq, range) ->
    Alcotest.(check int) "eq len" 1 (Array.length eq);
    Alcotest.(check bool) "lo bound" true (range.Analyze.lo <> Analyze.Unbounded)
  | None -> Alcotest.fail "no key range"

let test_encloses_sarg () =
  (* encloses(consts..., rect fields) recognised for R-tree relevance *)
  let e =
    Expr.Call
      ( "encloses",
        Expr.[
          cfloat 0.; cfloat 0.; cfloat 1.; cfloat 1.;
          field 1; field 2; field 3; field 4;
        ] )
  in
  match Analyze.sarg_of_conjunct e with
  | Some (Analyze.Encloses (fields, _)) ->
    Alcotest.(check (array int)) "rect fields" [| 1; 2; 3; 4 |] fields
  | _ -> Alcotest.fail "encloses not recognised"

let test_selectivity () =
  let s = emp_schema in
  let sel src = Analyze.selectivity (Parse.parse_exn s src) in
  Alcotest.(check bool) "eq < range" true (sel "id = 1" < sel "id > 1");
  Alcotest.(check bool) "and tightens" true (sel "id = 1 AND salary > 2" < sel "id = 1");
  Alcotest.(check bool) "bounded" true (sel "id = 1 OR salary > 2" <= 1.0)

let suite =
  [
    Alcotest.test_case "three-valued logic" `Quick test_three_valued;
    Alcotest.test_case "null propagation" `Quick test_null_propagation;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "LIKE matching" `Quick test_like;
    Alcotest.test_case "IN / BETWEEN" `Quick test_in_between;
    Alcotest.test_case "parameters" `Quick test_params;
    Alcotest.test_case "spatial builtins" `Quick test_spatial_funcs;
    Alcotest.test_case "expr codec roundtrip" `Quick test_expr_codec;
    Alcotest.test_case "parse + eval" `Quick test_parse_eval;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "conjuncts and sargs" `Quick test_conjuncts_sargs;
    Alcotest.test_case "composed-key matching" `Quick test_match_key;
    Alcotest.test_case "ENCLOSES recognition" `Quick test_encloses_sarg;
    Alcotest.test_case "selectivity heuristics" `Quick test_selectivity;
  ]
