open Dmx_lock
module LT = Lock_table
module LM = Lock_mode

let rel = LT.Relation 1
let rec_a = LT.Record (1, "a")

let test_mode_matrix () =
  let compat = LM.compatible in
  (* the classic multi-granularity matrix *)
  Alcotest.(check bool) "IS/IS" true (compat LM.IS LM.IS);
  Alcotest.(check bool) "IS/IX" true (compat LM.IS LM.IX);
  Alcotest.(check bool) "IS/S" true (compat LM.IS LM.S);
  Alcotest.(check bool) "IS/SIX" true (compat LM.IS LM.SIX);
  Alcotest.(check bool) "IS/X" false (compat LM.IS LM.X);
  Alcotest.(check bool) "IX/IX" true (compat LM.IX LM.IX);
  Alcotest.(check bool) "IX/S" false (compat LM.IX LM.S);
  Alcotest.(check bool) "IX/SIX" false (compat LM.IX LM.SIX);
  Alcotest.(check bool) "S/S" true (compat LM.S LM.S);
  Alcotest.(check bool) "S/SIX" false (compat LM.S LM.SIX);
  Alcotest.(check bool) "SIX/SIX" false (compat LM.SIX LM.SIX);
  Alcotest.(check bool) "X/X" false (compat LM.X LM.X);
  (* symmetry *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "symmetric" (compat a b) (compat b a))
        [ LM.IS; LM.IX; LM.S; LM.SIX; LM.X ])
    [ LM.IS; LM.IX; LM.S; LM.SIX; LM.X ]

let test_sup_lattice () =
  Alcotest.(check bool) "S+IX=SIX" true (LM.sup LM.S LM.IX = LM.SIX);
  Alcotest.(check bool) "IS+S=S" true (LM.sup LM.IS LM.S = LM.S);
  Alcotest.(check bool) "anything+X=X" true (LM.sup LM.IS LM.X = LM.X);
  Alcotest.(check bool) "leq refl" true (LM.leq LM.S LM.S);
  Alcotest.(check bool) "IS leq X" true (LM.leq LM.IS LM.X);
  Alcotest.(check bool) "X not leq S" false (LM.leq LM.X LM.S)

let test_grant_conflict () =
  let t = LT.create () in
  Alcotest.(check bool) "t1 S" true (LT.acquire t ~txid:1 ~mode:LM.S rel = LT.Granted);
  Alcotest.(check bool) "t2 S shares" true
    (LT.acquire t ~txid:2 ~mode:LM.S rel = LT.Granted);
  (match LT.acquire t ~txid:3 ~mode:LM.X rel with
  | LT.Would_block holders ->
    Alcotest.(check (list int)) "blockers" [ 1; 2 ] (List.sort compare holders)
  | LT.Granted -> Alcotest.fail "X granted over S");
  (* reacquiring a held lock is free *)
  Alcotest.(check bool) "re-grant" true
    (LT.acquire t ~txid:1 ~mode:LM.S rel = LT.Granted)

let test_upgrade () =
  let t = LT.create () in
  ignore (LT.acquire t ~txid:1 ~mode:LM.S rel);
  (* upgrade S->X with no other holders: granted, mode is now X *)
  Alcotest.(check bool) "upgrade alone" true
    (LT.acquire t ~txid:1 ~mode:LM.X rel = LT.Granted);
  Alcotest.(check bool) "holds X" true (LT.holds t ~txid:1 rel = Some LM.X);
  (* a second holder blocks the upgrade *)
  let t = LT.create () in
  ignore (LT.acquire t ~txid:1 ~mode:LM.S rel);
  ignore (LT.acquire t ~txid:2 ~mode:LM.S rel);
  (match LT.acquire t ~txid:1 ~mode:LM.X rel with
  | LT.Would_block [ 2 ] -> ()
  | _ -> Alcotest.fail "upgrade should block on the other holder")

let test_release_wakes_fifo () =
  let t = LT.create () in
  ignore (LT.acquire t ~txid:1 ~mode:LM.X rel);
  ignore (LT.enqueue t ~txid:2 ~mode:LM.S rel);
  ignore (LT.enqueue t ~txid:3 ~mode:LM.S rel);
  Alcotest.(check bool) "2 waiting" false (LT.is_granted t ~txid:2 rel);
  LT.release_all t 1;
  (* both S waiters are compatible: granted together *)
  Alcotest.(check bool) "2 granted" true (LT.is_granted t ~txid:2 rel);
  Alcotest.(check bool) "3 granted" true (LT.is_granted t ~txid:3 rel)

let test_fifo_no_starvation () =
  let t = LT.create () in
  ignore (LT.acquire t ~txid:1 ~mode:LM.S rel);
  (* X waits; a later S must NOT jump the queue *)
  ignore (LT.enqueue t ~txid:2 ~mode:LM.X rel);
  ignore (LT.enqueue t ~txid:3 ~mode:LM.S rel);
  LT.release_all t 1;
  Alcotest.(check bool) "X granted first" true (LT.is_granted t ~txid:2 rel);
  Alcotest.(check bool) "S still waits" false (LT.is_granted t ~txid:3 rel);
  LT.release_all t 2;
  Alcotest.(check bool) "then S" true (LT.is_granted t ~txid:3 rel)

let test_record_vs_relation () =
  let t = LT.create () in
  (* record locks under intention locks coexist *)
  ignore (LT.acquire t ~txid:1 ~mode:LM.IX rel);
  ignore (LT.acquire t ~txid:1 ~mode:LM.X rec_a);
  Alcotest.(check bool) "t2 IX on rel" true
    (LT.acquire t ~txid:2 ~mode:LM.IX rel = LT.Granted);
  (match LT.acquire t ~txid:2 ~mode:LM.X rec_a with
  | LT.Would_block [ 1 ] -> ()
  | _ -> Alcotest.fail "record conflict missed");
  Alcotest.(check bool) "other record free" true
    (LT.acquire t ~txid:2 ~mode:LM.X (LT.Record (1, "b")) = LT.Granted)

let test_deadlock_detection () =
  let t = LT.create () in
  ignore (LT.acquire t ~txid:1 ~mode:LM.X rec_a);
  ignore (LT.acquire t ~txid:2 ~mode:LM.X (LT.Record (1, "b")));
  ignore (LT.enqueue t ~txid:1 ~mode:LM.X (LT.Record (1, "b")));
  Alcotest.(check (option int)) "no cycle yet" None (Deadlock.detect t);
  ignore (LT.enqueue t ~txid:2 ~mode:LM.X rec_a);
  (match Deadlock.detect t with
  | Some victim -> Alcotest.(check int) "youngest is victim" 2 victim
  | None -> Alcotest.fail "deadlock missed");
  (* aborting the victim clears the cycle *)
  LT.release_all t 2;
  Alcotest.(check (option int)) "cycle gone" None (Deadlock.detect t);
  Alcotest.(check bool) "t1 now granted" true (LT.is_granted t ~txid:1 (LT.Record (1, "b")))

let test_three_way_deadlock () =
  let t = LT.create () in
  let r i = LT.Record (1, string_of_int i) in
  ignore (LT.acquire t ~txid:1 ~mode:LM.X (r 1));
  ignore (LT.acquire t ~txid:2 ~mode:LM.X (r 2));
  ignore (LT.acquire t ~txid:3 ~mode:LM.X (r 3));
  ignore (LT.enqueue t ~txid:1 ~mode:LM.X (r 2));
  ignore (LT.enqueue t ~txid:2 ~mode:LM.X (r 3));
  Alcotest.(check (option int)) "no cycle" None (Deadlock.detect t);
  ignore (LT.enqueue t ~txid:3 ~mode:LM.X (r 1));
  match Deadlock.detect t with
  | Some v -> Alcotest.(check int) "victim" 3 v
  | None -> Alcotest.fail "3-way deadlock missed"

let test_external_edges () =
  (* "all lock controllers must be able to participate in ... system-wide
     deadlock detection": an extension-owned controller contributes edges *)
  let t = LT.create () in
  ignore (LT.acquire t ~txid:1 ~mode:LM.X rec_a);
  ignore (LT.enqueue t ~txid:2 ~mode:LM.X rec_a);
  (* extension reports: tx1 waits for tx2 inside its own controller *)
  LT.add_external_edges_hook t (fun () -> [ (1, 2) ]);
  match Deadlock.detect t with
  | Some v -> Alcotest.(check int) "victim across controllers" 2 v
  | None -> Alcotest.fail "cross-controller deadlock missed"

let test_cancel_waits () =
  let t = LT.create () in
  ignore (LT.acquire t ~txid:1 ~mode:LM.X rel);
  ignore (LT.enqueue t ~txid:2 ~mode:LM.S rel);
  LT.cancel_waits t 2;
  Alcotest.(check int) "no edges" 0 (List.length (LT.waits_for_edges t));
  LT.release_all t 1;
  Alcotest.(check bool) "cancelled waiter not granted" false
    (LT.is_granted t ~txid:2 rel)

let suite =
  [
    Alcotest.test_case "compatibility matrix" `Quick test_mode_matrix;
    Alcotest.test_case "sup lattice" `Quick test_sup_lattice;
    Alcotest.test_case "grant and conflict" `Quick test_grant_conflict;
    Alcotest.test_case "mode upgrade" `Quick test_upgrade;
    Alcotest.test_case "release wakes compatible FIFO" `Quick
      test_release_wakes_fifo;
    Alcotest.test_case "FIFO prevents starvation" `Quick test_fifo_no_starvation;
    Alcotest.test_case "record vs relation granularity" `Quick
      test_record_vs_relation;
    Alcotest.test_case "deadlock detection + victim" `Quick
      test_deadlock_detection;
    Alcotest.test_case "three-way deadlock" `Quick test_three_way_deadlock;
    Alcotest.test_case "extension lock controllers join detection" `Quick
      test_external_edges;
    Alcotest.test_case "cancel waits" `Quick test_cancel_waits;
  ]
