open Dmx_value
open Dmx_catalog
open Test_util

let test_attrlist () =
  let specs =
    [
      Attrlist.spec ~required:true "fields" Attrlist.A_string;
      Attrlist.spec "unique" Attrlist.A_bool;
      Attrlist.spec "buckets" Attrlist.A_int;
    ]
  in
  (match Attrlist.validate specs [ ("fields", "a,b"); ("unique", "true") ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Attrlist.validate specs [ ("unique", "yes") ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing required accepted");
  (match Attrlist.validate specs [ ("fields", "a"); ("nosuch", "1") ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown attr accepted");
  (match Attrlist.validate specs [ ("fields", "a"); ("buckets", "many") ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad int accepted");
  (match Attrlist.validate specs [ ("fields", "a"); ("FIELDS", "b") ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate attr accepted");
  Alcotest.(check (option string)) "case-insensitive find" (Some "a,b")
    (Attrlist.find [ ("Fields", "a,b") ] "fields");
  (match Attrlist.get_bool [ ("unique", "1") ] "unique" with
  | Ok (Some true) -> ()
  | _ -> Alcotest.fail "bool forms");
  (* codec *)
  let l = [ ("k1", "v1"); ("k2", "") ] in
  let e = Codec.Enc.create () in
  Attrlist.enc e l;
  Alcotest.(check bool) "roundtrip" true
    (Attrlist.dec (Codec.Dec.of_string (Codec.Enc.to_string e)) = l)

let mk_desc () =
  let d =
    Descriptor.make ~rel_id:7 ~rel_name:"emp" ~schema:emp_schema ~smethod_id:2
      ~smethod_desc:"smd"
  in
  Descriptor.set_attachment_desc d 0 (Some "slot0");
  Descriptor.set_attachment_desc d 5 (Some "slot5");
  d

let test_descriptor_layout () =
  let d = mk_desc () in
  Alcotest.(check (list int)) "present slots ascending" [ 0; 5 ]
    (Descriptor.attachment_types_present d);
  Alcotest.(check (option string)) "slot read" (Some "slot5")
    (Descriptor.attachment_desc d 5);
  Alcotest.(check (option string)) "empty slot is NULL" None
    (Descriptor.attachment_desc d 3);
  let v0 = d.Descriptor.version in
  Descriptor.set_attachment_desc d 5 None;
  Alcotest.(check bool) "version bumps on slot change" true
    (d.Descriptor.version > v0);
  let v1 = d.Descriptor.version in
  Descriptor.set_smethod_desc d "smd2";
  Alcotest.(check int) "smethod desc change does not bump" v1
    d.Descriptor.version;
  (* out-of-range slots are rejected (the paper's few-dozen cap) *)
  match Descriptor.attachment_desc d Descriptor.max_attachment_types with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "slot beyond cap accepted"

let test_descriptor_codec () =
  let d = mk_desc () in
  d.Descriptor.version <- 42;
  let e = Codec.Enc.create () in
  Descriptor.enc e d;
  let d' = Descriptor.dec (Codec.Dec.of_string (Codec.Enc.to_string e)) in
  Alcotest.(check int) "rel_id" d.Descriptor.rel_id d'.Descriptor.rel_id;
  Alcotest.(check string) "name" d.Descriptor.rel_name d'.Descriptor.rel_name;
  Alcotest.(check int) "version" 42 d'.Descriptor.version;
  Alcotest.(check string) "smethod desc" "smd" d'.Descriptor.smethod_desc;
  Alcotest.(check bool) "schema" true
    (Schema.equal d.Descriptor.schema d'.Descriptor.schema);
  Alcotest.(check (list int)) "slots" [ 0; 5 ]
    (Descriptor.attachment_types_present d')

let test_catalog_crud () =
  let c = Catalog.create () in
  let d1 =
    match
      Catalog.add_relation c ~rel_name:"emp" ~schema:emp_schema ~smethod_id:0
        ~smethod_desc:""
    with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  (match
     Catalog.add_relation c ~rel_name:"EMP" ~schema:emp_schema ~smethod_id:0
       ~smethod_desc:""
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "case-insensitive duplicate accepted");
  Alcotest.(check bool) "find by name" true (Catalog.find c "Emp" <> None);
  Alcotest.(check bool) "find by id" true
    (Catalog.find_by_id c d1.Descriptor.rel_id <> None);
  (match Catalog.remove_relation c d1.Descriptor.rel_id with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "gone" true (Catalog.find c "emp" = None);
  match Catalog.remove_relation c 999 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "removing unknown relation"

let test_catalog_persistence () =
  let path = Filename.temp_file "dmx_cat" ".dmx" in
  Sys.remove path;
  let c = Catalog.create ~path () in
  let d =
    match
      Catalog.add_relation c ~rel_name:"emp" ~schema:emp_schema ~smethod_id:3
        ~smethod_desc:"xyz"
    with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  Catalog.set_attachment_slot c ~rel_id:d.Descriptor.rel_id ~slot:2
    (Some "att2");
  Catalog.save c;
  let c2 = Catalog.load ~path in
  (match Catalog.find c2 "emp" with
  | Some d' ->
    Alcotest.(check string) "smethod desc" "xyz" d'.Descriptor.smethod_desc;
    Alcotest.(check (option string)) "slot" (Some "att2")
      (Descriptor.attachment_desc d' 2)
  | None -> Alcotest.fail "relation lost");
  Alcotest.(check int) "next id continues" (d.Descriptor.rel_id + 1)
    (Catalog.next_rel_id c2);
  Sys.remove path

let test_catalog_op_codec_and_undo () =
  let c = Catalog.create () in
  let d =
    match
      Catalog.add_relation c ~rel_name:"emp" ~schema:emp_schema ~smethod_id:0
        ~smethod_desc:""
    with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let rel_id = d.Descriptor.rel_id in
  (* op codec roundtrips *)
  let ops =
    [
      Catalog.Create_rel (Descriptor.copy d);
      Catalog.Drop_rel (Descriptor.copy d);
      Catalog.Set_attachment
        { rel_id; slot = 3; old_desc = None; new_desc = Some "n" };
    ]
  in
  List.iter
    (fun op ->
      let op' = Catalog.decode_op (Catalog.encode_op op) in
      match op, op' with
      | Catalog.Create_rel a, Catalog.Create_rel b
      | Catalog.Drop_rel a, Catalog.Drop_rel b ->
        Alcotest.(check int) "rel id" a.Descriptor.rel_id b.Descriptor.rel_id
      | ( Catalog.Set_attachment
            { rel_id = r1; slot = s1; old_desc = o1; new_desc = n1 },
          Catalog.Set_attachment
            { rel_id = r2; slot = s2; old_desc = o2; new_desc = n2 } ) ->
        Alcotest.(check bool) "set_attachment" true
          (r1 = r2 && s1 = s2 && o1 = o2 && n1 = n2)
      | _ -> Alcotest.fail "op kind changed")
    ops;
  (* undo Create_rel removes (and tolerates being re-run) *)
  Catalog.undo_op c (Catalog.Create_rel (Descriptor.copy d));
  Alcotest.(check bool) "create undone" true (Catalog.find c "emp" = None);
  Catalog.undo_op c (Catalog.Create_rel (Descriptor.copy d));
  (* undo Drop_rel restores (and tolerates being re-run) *)
  Catalog.undo_op c (Catalog.Drop_rel (Descriptor.copy d));
  Alcotest.(check bool) "drop undone" true (Catalog.find c "emp" <> None);
  Catalog.undo_op c (Catalog.Drop_rel (Descriptor.copy d));
  Alcotest.(check int) "no duplicate" 1 (List.length (Catalog.relations c));
  (* undo Set_attachment restores the old slot *)
  Catalog.set_attachment_slot c ~rel_id ~slot:4 (Some "new");
  Catalog.undo_op c
    (Catalog.Set_attachment
       { rel_id; slot = 4; old_desc = Some "old"; new_desc = Some "new" });
  (match Catalog.find_by_id c rel_id with
  | Some d' ->
    Alcotest.(check (option string)) "slot restored" (Some "old")
      (Descriptor.attachment_desc d' 4)
  | None -> Alcotest.fail "relation vanished");
  (* undo against a dropped relation is a no-op *)
  ignore (Catalog.remove_relation c rel_id);
  Catalog.undo_op c
    (Catalog.Set_attachment
       { rel_id; slot = 4; old_desc = None; new_desc = None })

(* Property: descriptor encode/decode is the identity on slot contents. *)
let prop_descriptor_roundtrip =
  QCheck.Test.make ~name:"descriptor codec roundtrip" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 0 10)
        (pair (int_range 0 (Descriptor.max_attachment_types - 1)) string))
    (fun slots ->
      let d =
        Descriptor.make ~rel_id:1 ~rel_name:"r" ~schema:emp_schema
          ~smethod_id:0 ~smethod_desc:"sd"
      in
      List.iter
        (fun (slot, data) -> Descriptor.set_attachment_desc d slot (Some data))
        slots;
      let e = Codec.Enc.create () in
      Descriptor.enc e d;
      let d' = Descriptor.dec (Codec.Dec.of_string (Codec.Enc.to_string e)) in
      List.for_all
        (fun n ->
          Descriptor.attachment_desc d n = Descriptor.attachment_desc d' n)
        (List.init Descriptor.max_attachment_types Fun.id))

let suite =
  [
    Alcotest.test_case "attribute lists" `Quick test_attrlist;
    Alcotest.test_case "composite descriptor layout" `Quick
      test_descriptor_layout;
    Alcotest.test_case "descriptor codec" `Quick test_descriptor_codec;
    Alcotest.test_case "catalog CRUD" `Quick test_catalog_crud;
    Alcotest.test_case "catalog persistence" `Quick test_catalog_persistence;
    Alcotest.test_case "catalog op codec + testable undo" `Quick
      test_catalog_op_codec_and_undo;
    QCheck_alcotest.to_alcotest prop_descriptor_roundtrip;
  ]
