open Dmx_value
open Test_util

let test_compare_ordering () =
  Alcotest.(check bool) "null < int" true (Value.compare Value.Null (vi 1) < 0);
  Alcotest.(check bool) "int order" true (Value.compare (vi 1) (vi 2) < 0);
  Alcotest.(check bool)
    "cross-type by rank" true
    (Value.compare (vb true) (vi 0) < 0);
  Alcotest.(check bool) "string order" true (Value.compare (vs "a") (vs "b") < 0);
  Alcotest.(check int) "equal" 0 (Value.compare (vf 1.5) (vf 1.5))

let test_has_type () =
  Alcotest.(check bool) "null in every domain" true
    (Value.has_type Value.Tint Value.Null);
  Alcotest.(check bool) "int is int" true (Value.has_type Value.Tint (vi 3));
  Alcotest.(check bool) "string not int" false
    (Value.has_type Value.Tint (vs "x"))

let test_ty_roundtrip () =
  List.iter
    (fun ty ->
      Alcotest.(check bool)
        "ty roundtrip" true
        (Value.ty_of_string (Value.ty_to_string ty) = Some ty))
    [ Value.Tbool; Value.Tint; Value.Tfloat; Value.Tstring ]

let check_unit_ok = function
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_schema_validate () =
  let s = emp_schema in
  Alcotest.(check int) "arity" 4 (Schema.arity s);
  Alcotest.(check (option int)) "find id" (Some 0) (Schema.field_index s "ID");
  check_unit_ok (Schema.validate_record s (emp 1 "a" "d" 10));
  (match Schema.validate_record s [| vi 1; vs "a"; vs "d" |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "arity mismatch accepted");
  (match Schema.validate_record s [| Value.Null; vs "a"; vs "d"; vi 1 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "NOT NULL violated");
  match Schema.validate_record s [| vs "x"; vs "a"; vs "d"; vi 1 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "type mismatch accepted"

let test_schema_dups () =
  match Schema.make [ Schema.column "a" Value.Tint; Schema.column "A" Value.Tint ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate (case-insensitive) columns accepted"

let test_codec_roundtrip () =
  let r = [| Value.Null; vb false; vi (-42); vf 3.25; vs "héllo" |] in
  Alcotest.check record_testable "record roundtrip" r
    (Codec.decode_record (Codec.encode_record r));
  let s = emp_schema in
  Alcotest.(check bool) "schema roundtrip" true
    (Schema.equal s (Codec.decode_schema (Codec.encode_schema s)))

let test_varint () =
  let e = Codec.Enc.create () in
  List.iter (Codec.Enc.varint e) [ 0; 1; 127; 128; 300; 1 lsl 20; 1 lsl 40 ];
  let d = Codec.Dec.of_string (Codec.Enc.to_string e) in
  List.iter
    (fun expect -> Alcotest.(check int) "varint" expect (Codec.Dec.varint d))
    [ 0; 1; 127; 128; 300; 1 lsl 20; 1 lsl 40 ];
  Alcotest.(check bool) "consumed" true (Codec.Dec.at_end d)

let test_record_key () =
  let k1 = Record_key.rid ~page:3 ~slot:7 in
  let k2 = Record_key.fields [| vi 1; vs "x" |] in
  Alcotest.check key_testable "rid roundtrip" k1 (Record_key.decode (Record_key.encode k1));
  Alcotest.check key_testable "fields roundtrip" k2
    (Record_key.decode (Record_key.encode k2));
  Alcotest.(check bool) "ordering rid<fields" true (Record_key.compare k1 k2 < 0)

let test_project () =
  let r = emp 7 "bob" "eng" 100 in
  Alcotest.check record_testable "project" [| vs "bob"; vi 7 |]
    (Record.project r [| 1; 0 |])

let suite =
  [
    Alcotest.test_case "value compare ordering" `Quick test_compare_ordering;
    Alcotest.test_case "value has_type" `Quick test_has_type;
    Alcotest.test_case "ty roundtrip" `Quick test_ty_roundtrip;
    Alcotest.test_case "schema validate" `Quick test_schema_validate;
    Alcotest.test_case "schema duplicate columns" `Quick test_schema_dups;
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "varint" `Quick test_varint;
    Alcotest.test_case "record key" `Quick test_record_key;
    Alcotest.test_case "record project" `Quick test_project;
  ]
