(* Planner, bound-plan cache and executor. *)
open Dmx_value
open Test_util
module Db = Dmx_db.Db
module Query = Dmx_query.Query
module Plan_cache = Dmx_query.Plan_cache
module Error = Dmx_core.Error

let open_db () =
  ignore (fresh_services ());  (* ensures registration + resets volatile state *)
  Db.open_database ()

let seed_employees ?(distinct_depts = 4) db ctx n =
  let dept_names = [| "eng"; "ops"; "hr"; "sales" |] in
  let desc =
    check_ok "create"
      (Db.create_relation db ctx ~name:"employee" ~schema:emp_schema ())
  in
  ignore desc;
  for i = 1 to n do
    let dept =
      if distinct_depts <= 4 then dept_names.(i mod 4)
      else Fmt.str "d%d" (i mod distinct_depts)
    in
    ignore
      (check_ok "insert"
         (Db.insert db ctx ~relation:"employee"
            (emp i (Fmt.str "u%d" i) dept (1000 + i))))
  done

let test_access_selection () =
  let db = open_db () in
  let r =
    Db.with_txn db (fun ctx ->
        seed_employees ~distinct_depts:100 db ctx 2000;
        check_ok "index"
          (Db.create_attachment db ctx ~relation:"employee"
             ~attachment_type:"btree_index" ~name:"by_dept"
             ~attrs:[ ("fields", "dept") ] ());
        (* selective point query: the index wins *)
        let q = Query.select ~where:"dept = 'd7'" "employee" in
        let plan = check_ok "explain" (Db.explain db ctx q) in
        Alcotest.(check bool)
          (Fmt.str "picks index: %s" plan)
          true
          (String.length plan >= 8 && String.sub plan 0 8 = "index_eq");
        let rows = check_ok "run" (Db.query db ctx q ()) in
        Alcotest.(check int) "d7 rows" 20 (List.length rows);
        List.iter
          (fun r -> Alcotest.check value_testable "dept" (vs "d7") r.(2))
          rows;
        (* no predicate: sequential scan *)
        let q2 = Query.select "employee" in
        let plan2 = check_ok "explain2" (Db.explain db ctx q2) in
        Alcotest.(check bool)
          (Fmt.str "seq scan: %s" plan2)
          true
          (String.sub plan2 0 8 = "seq_scan");
        Alcotest.(check int) "all rows" 2000
          (List.length (check_ok "run2" (Db.query db ctx q2 ())));
        Ok ())
  in
  ignore (check_ok "txn" r);
  Db.close db

let test_hash_beats_btree_for_point () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            seed_employees db ctx 1000;
            check_ok "btree"
              (Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"btree_index" ~name:"bt_id"
                 ~attrs:[ ("fields", "id") ] ());
            check_ok "hash"
              (Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"hash_index" ~name:"h_id"
                 ~attrs:[ ("fields", "id"); ("unique", "true") ] ());
            let q = Query.select ~where:"id = 42" "employee" in
            let plan = check_ok "explain" (Db.explain db ctx q) in
            Alcotest.(check bool)
              (Fmt.str "hash wins: %s" plan)
              true
              (Astring_contains.contains plan "hash_index");
            let rows = check_ok "run" (Db.query db ctx q ()) in
            Alcotest.(check int) "one row" 1 (List.length rows);
            (* range query: hash is irrelevant, btree used *)
            let q2 = Query.select ~where:"id > 990" "employee" in
            let plan2 = check_ok "explain2" (Db.explain db ctx q2) in
            Alcotest.(check bool)
              (Fmt.str "btree for range: %s" plan2)
              true
              (Astring_contains.contains plan2 "btree_index");
            Alcotest.(check int) "range rows" 10
              (List.length (check_ok "run2" (Db.query db ctx q2 ())));
            Ok ())));
  Db.close db

let test_keyed_storage_scan () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            ignore
              (check_ok "create"
                 (Db.create_relation db ctx ~name:"kv" ~schema:emp_schema
                    ~storage_method:"btree" ~attrs:[ ("key", "id") ] ()));
            for i = 1 to 100 do
              ignore
                (check_ok "ins"
                   (Db.insert db ctx ~relation:"kv" (emp i "x" "d" i)))
            done;
            let q = Query.select ~where:"id >= 10 AND id < 20" "kv" in
            let plan = check_ok "explain" (Db.explain db ctx q) in
            Alcotest.(check bool)
              (Fmt.str "keyed: %s" plan)
              true
              (Astring_contains.contains plan "keyed_scan");
            Alcotest.(check int) "rows" 10
              (List.length (check_ok "run" (Db.query db ctx q ())));
            Ok ())));
  Db.close db

let test_spatial_plan () =
  let db = open_db () in
  let schema =
    Schema.make_exn
      [
        Schema.column ~nullable:false "id" Value.Tint;
        Schema.column ~nullable:false "xlo" Value.Tfloat;
        Schema.column ~nullable:false "ylo" Value.Tfloat;
        Schema.column ~nullable:false "xhi" Value.Tfloat;
        Schema.column ~nullable:false "yhi" Value.Tfloat;
      ]
  in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            ignore
              (check_ok "create"
                 (Db.create_relation db ctx ~name:"parcels" ~schema ()));
            check_ok "rtree"
              (Db.create_attachment db ctx ~relation:"parcels"
                 ~attachment_type:"rtree_index" ~name:"parcel_rt"
                 ~attrs:[ ("rect", "xlo,ylo,xhi,yhi") ] ());
            for i = 0 to 2499 do
              let x = float_of_int (i mod 50) *. 10. in
              let y = float_of_int (i / 50) *. 10. in
              ignore
                (check_ok "ins"
                   (Db.insert db ctx ~relation:"parcels"
                      [| vi i; vf x; vf y; vf (x +. 5.); vf (y +. 5.) |]))
            done;
            let q =
              Query.select
                ~where:"encloses(0.0, 0.0, 28.0, 28.0, xlo, ylo, xhi, yhi)"
                "parcels"
            in
            let plan = check_ok "explain" (Db.explain db ctx q) in
            Alcotest.(check bool)
              (Fmt.str "spatial: %s" plan)
              true
              (Astring_contains.contains plan "spatial");
            let rows = check_ok "run" (Db.query db ctx q ()) in
            (* parcels fully inside [0,28]^2: x,y in {0,10,20}, extent 5 *)
            Alcotest.(check int) "enclosed parcels" 9 (List.length rows);
            Ok ())));
  Db.close db

let test_plan_cache_and_invalidation () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            seed_employees db ctx 50;
            check_ok "index"
              (Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"btree_index" ~name:"by_dept"
                 ~attrs:[ ("fields", "dept") ] ());
            Ok ())));
  Plan_cache.reset_stats db.Db.cache;
  let q = Query.select ~where:"dept = 'ops'" "employee" in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            ignore (check_ok "run1" (Db.query db ctx q ()));
            ignore (check_ok "run2" (Db.query db ctx q ()));
            ignore (check_ok "run3" (Db.query db ctx q ()));
            Ok ())));
  let s = Plan_cache.stats db.Db.cache in
  Alcotest.(check int) "one translation" 1 s.Plan_cache.translations;
  Alcotest.(check int) "two reuses" 2 s.hits;
  (* dropping the index bumps the descriptor version: the saved plan is
     invalid and re-translated automatically at next invocation *)
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            check_ok "drop index"
              (Db.drop_attachment db ctx ~relation:"employee"
                 ~attachment_type:"btree_index" ~name:"by_dept");
            Ok ())));
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            let rows = check_ok "run4" (Db.query db ctx q ()) in
            Alcotest.(check int) "still correct" 13 (List.length rows);
            let plan = check_ok "explain" (Db.explain db ctx q) in
            Alcotest.(check bool)
              (Fmt.str "fell back to scan: %s" plan)
              true
              (String.sub plan 0 8 = "seq_scan");
            Ok ())));
  let s = Plan_cache.stats db.Db.cache in
  Alcotest.(check int) "retranslated" 1 s.Plan_cache.invalidations;
  Db.close db

let test_params () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            seed_employees db ctx 30;
            check_ok "index"
              (Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"btree_index" ~name:"by_id"
                 ~attrs:[ ("fields", "id"); ("unique", "true") ] ());
            Ok ())));
  Plan_cache.reset_stats db.Db.cache;
  let q = Query.select ~where:"id = ?0" "employee" in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            let run p =
              check_ok "run" (Db.query db ctx q ~params:[| vi p |] ())
            in
            let r1 = run 7 in
            Alcotest.(check int) "one row" 1 (List.length r1);
            Alcotest.check value_testable "id 7" (vi 7) (List.hd r1).(0);
            let r2 = run 23 in
            Alcotest.check value_testable "id 23" (vi 23) (List.hd r2).(0);
            Alcotest.(check int) "no match" 0 (List.length (run 999));
            Ok ())));
  let s = Plan_cache.stats db.Db.cache in
  Alcotest.(check int) "one plan, three runs" 1 s.Plan_cache.translations;
  Alcotest.(check int) "reused" 2 s.hits;
  Db.close db

let dept_schema =
  Schema.make_exn
    [
      Schema.column ~nullable:false "name" Value.Tstring;
      Schema.column "building" Value.Tstring;
    ]

let seed_join db ctx =
  ignore
    (check_ok "dept"
       (Db.create_relation db ctx ~name:"dept" ~schema:dept_schema ()));
  List.iter
    (fun (n, b) ->
      ignore
        (check_ok "d" (Db.insert db ctx ~relation:"dept" [| vs n; vs b |])))
    [ ("eng", "b1"); ("ops", "b2"); ("hr", "b3"); ("sales", "b4") ];
  seed_employees db ctx 40

let test_nested_loop_join () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            seed_join db ctx;
            let q =
              Query.join "employee"
                ~on:("dept", "dept", "name")
                ~where:"salary > 1035"
                ~project:[ "name"; "building" ]
            in
            let plan = check_ok "explain" (Db.explain db ctx q) in
            Alcotest.(check bool)
              (Fmt.str "nested loop: %s" plan)
              true
              (Astring_contains.contains plan "nested_loop");
            let rows = check_ok "run" (Db.query db ctx q ()) in
            Alcotest.(check int) "joined rows" 5 (List.length rows);
            List.iter
              (fun r -> Alcotest.(check int) "projected" 2 (Array.length r))
              rows;
            Ok ())));
  Db.close db

let test_join_index_join () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            seed_join db ctx;
            check_ok "ji"
              (Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"join_index" ~name:"emp_dept"
                 ~attrs:
                   [ ("field", "dept"); ("other", "dept");
                     ("other_field", "name") ]
                 ());
            let q = Query.join "employee" ~on:("dept", "dept", "name") in
            let plan = check_ok "explain" (Db.explain db ctx q) in
            Alcotest.(check bool)
              (Fmt.str "join index: %s" plan)
              true
              (Astring_contains.contains plan "join_index");
            let rows = check_ok "run" (Db.query db ctx q ()) in
            Alcotest.(check int) "all pairs" 40 (List.length rows);
            (* same answer as nested loop *)
            let q2 =
              Query.join "employee" ~on:("dept", "dept", "name")
                ~where:"id < 1000000"
            in
            let rows2 = check_ok "run2" (Db.query db ctx q2 ()) in
            Alcotest.(check int) "consistent" (List.length rows)
              (List.length rows2);
            Ok ())));
  Db.close db

let test_authorization () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            seed_employees db ctx 5;
            Ok ())));
  Db.set_user db "bob";
  let q = Query.select "employee" in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            (match Db.query db ctx q () with
            | Error (Error.Authorization_denied _) -> ()
            | _ -> Alcotest.fail "bob read without SELECT");
            (match Db.insert db ctx ~relation:"employee" (emp 99 "x" "y" 1) with
            | Error (Error.Authorization_denied _) -> ()
            | _ -> Alcotest.fail "bob wrote without INSERT");
            Ok ())));
  Db.set_user db "admin";
  check_ok "grant"
    (Db.grant db ~user:"bob" ~privs:[ Dmx_authz.Authz.Select ]
       ~relation:"employee");
  Db.set_user db "bob";
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            Alcotest.(check int) "bob reads now" 5
              (List.length (check_ok "q" (Db.query db ctx q ())));
            (* still can't create attachments (CONTROL) *)
            (match
               Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"btree_index" ~name:"sneaky"
                 ~attrs:[ ("fields", "id") ] ()
             with
            | Error (Error.Authorization_denied _) -> ()
            | _ -> Alcotest.fail "bob altered without CONTROL");
            Ok ())));
  Db.set_user db "admin";
  check_ok "revoke"
    (Db.revoke db ~user:"bob" ~privs:[ Dmx_authz.Authz.Select ]
       ~relation:"employee");
  Db.set_user db "bob";
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            (match Db.query db ctx q () with
            | Error (Error.Authorization_denied _) -> ()
            | _ -> Alcotest.fail "bob read after revoke");
            Ok ())));
  Db.close db

let test_projection_and_predicates () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            seed_employees db ctx 20;
            let q =
              Query.select ~where:"salary > 1010 AND dept <> 'hr'"
                ~project:[ "name"; "salary" ] "employee"
            in
            let rows = check_ok "run" (Db.query db ctx q ()) in
            List.iter
              (fun r ->
                Alcotest.(check int) "two cols" 2 (Array.length r);
                match Value.to_int r.(1) with
                | Some s -> Alcotest.(check bool) "salary" true (s > 1010L)
                | None -> Alcotest.fail "bad projection")
              rows;
            Ok ())));
  Db.close db

let test_query_edge_cases () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            seed_employees db ctx 20;
            check_ok "pk"
              (Db.create_attachment db ctx ~relation:"employee"
                 ~attachment_type:"btree_index" ~name:"pk"
                 ~attrs:[ ("fields", "id"); ("unique", "true") ] ());
            (* NULL parameter in a point query: no matches, no crash *)
            let q = Query.select ~where:"id = ?0" "employee" in
            Alcotest.(check int) "null param" 0
              (List.length
                 (check_ok "nullq"
                    (Db.query db ctx q ~params:[| Value.Null |] ())));
            (* missing parameter surfaces as a typed error *)
            (match Db.query db ctx q () with
            | Error (Error.Internal _) -> ()
            | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
            | Ok _ -> Alcotest.fail "missing parameter accepted");
            (* unknown relation *)
            (match Db.query db ctx (Query.select "phantom") () with
            | Error (Error.No_such_relation _) -> ()
            | _ -> Alcotest.fail "phantom relation queried");
            (* unknown column in predicate *)
            (match Db.query db ctx (Query.select ~where:"nosuch = 1" "employee") () with
            | Error (Error.Schema_error _) -> ()
            | _ -> Alcotest.fail "unknown column accepted");
            (* unknown column in projection *)
            (match
               Db.query db ctx (Query.select ~project:[ "nosuch" ] "employee") ()
             with
            | Error (Error.Schema_error _) -> ()
            | _ -> Alcotest.fail "unknown projection accepted");
            (* predicate that is always false *)
            Alcotest.(check int) "contradiction" 0
              (List.length
                 (check_ok "f"
                    (Db.query db ctx
                       (Query.select ~where:"id = 1 AND id = 2" "employee")
                       ())));
            (* division by zero inside a predicate: typed error, not a crash *)
            (match
               Db.query db ctx
                 (Query.select ~where:"salary / 0 = 1" "employee") ()
             with
            | Error (Error.Internal _) -> ()
            | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
            | Ok _ -> Alcotest.fail "division by zero ignored");
            Ok ())));
  Db.close db

let test_join_projection_inner_columns () =
  let db = open_db () in
  ignore
    (check_ok "txn"
       (Db.with_txn db (fun ctx ->
            seed_join db ctx;
            (* project a column that exists only on the inner relation, plus
               one from the outer *)
            let q =
              Query.join "employee" ~on:("dept", "dept", "name")
                ~project:[ "building"; "id" ]
            in
            let rows = check_ok "run" (Db.query db ctx q ()) in
            Alcotest.(check int) "all rows joined" 40 (List.length rows);
            List.iter
              (fun r ->
                Alcotest.(check int) "two columns" 2 (Array.length r);
                match r.(0) with
                | Value.String s ->
                  Alcotest.(check bool) "building value" true
                    (String.length s = 2 && s.[0] = 'b')
                | v -> Alcotest.failf "bad building %a" Value.pp v)
              rows;
            Ok ())));
  Db.close db

let suite =
  [
    Alcotest.test_case "cost-based access selection" `Quick
      test_access_selection;
    Alcotest.test_case "query edge cases" `Quick test_query_edge_cases;
    Alcotest.test_case "join projecting inner columns" `Quick
      test_join_projection_inner_columns;
    Alcotest.test_case "hash vs btree point/range" `Quick
      test_hash_beats_btree_for_point;
    Alcotest.test_case "keyed storage scan" `Quick test_keyed_storage_scan;
    Alcotest.test_case "spatial ENCLOSES plan" `Quick test_spatial_plan;
    Alcotest.test_case "plan cache + invalidation" `Quick
      test_plan_cache_and_invalidation;
    Alcotest.test_case "parameterised plans" `Quick test_params;
    Alcotest.test_case "nested-loop join" `Quick test_nested_loop_join;
    Alcotest.test_case "join-index join" `Quick test_join_index_join;
    Alcotest.test_case "uniform authorization" `Quick test_authorization;
    Alcotest.test_case "projection + residual predicates" `Quick
      test_projection_and_predicates;
  ]
