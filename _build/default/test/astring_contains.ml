(* Tiny substring test used by the suites (no astring dependency). *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else loop (i + 1)
  in
  nn = 0 || loop 0
