open Dmx_page
open Dmx_rtree

let make_tree () =
  let d = Disk.in_memory () in
  let bp = Buffer_pool.create ~capacity:128 d in
  Rtree.create bp

let rect x y w h = Rect.make ~xlo:x ~ylo:y ~xhi:(x +. w) ~yhi:(y +. h)

let test_rect_ops () =
  let a = rect 0. 0. 10. 10. in
  let b = rect 5. 5. 10. 10. in
  let c = rect 20. 20. 1. 1. in
  Alcotest.(check bool) "intersects" true (Rect.intersects a b);
  Alcotest.(check bool) "disjoint" false (Rect.intersects a c);
  Alcotest.(check bool) "encloses" true (Rect.encloses a (rect 1. 1. 2. 2.));
  Alcotest.(check bool) "not encloses" false (Rect.encloses a b);
  Alcotest.(check (float 0.001)) "area" 100. (Rect.area a);
  Alcotest.(check (float 0.001)) "union area" 225. (Rect.area (Rect.union a b));
  (* normalisation *)
  let flipped = Rect.make ~xlo:10. ~ylo:10. ~xhi:0. ~yhi:0. in
  Alcotest.(check (float 0.001)) "normalised" 100. (Rect.area flipped);
  Alcotest.(check bool) "enlargement zero" true
    (Rect.enlargement a (rect 1. 1. 1. 1.) = 0.)

let test_insert_search () =
  let t = make_tree () in
  for i = 0 to 199 do
    let x = float_of_int (i mod 20) *. 10. in
    let y = float_of_int (i / 20) *. 10. in
    Rtree.insert t ~rect:(rect x y 5. 5.) ~payload:(string_of_int i)
  done;
  Alcotest.(check int) "count" 200 (Rtree.count t);
  Alcotest.(check bool) "height grew" true (Rtree.height t > 1);
  (match Rtree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* window query *)
  let hits = Rtree.search_overlapping t (rect 0. 0. 25. 25.) in
  (* cells with x in {0,10,20}, y in {0,10,20} = 9 *)
  Alcotest.(check int) "overlap hits" 9 (List.length hits);
  let enclosed = Rtree.search_enclosed_by t (rect 0. 0. 26. 26.) in
  Alcotest.(check int) "enclosed" 9 (List.length enclosed);
  (* enclosing: which data rects enclose a small probe *)
  let enclosing = Rtree.search_enclosing t (rect 1. 1. 2. 2.) in
  Alcotest.(check int) "enclosing" 1 (List.length enclosing)

let test_delete () =
  let t = make_tree () in
  for i = 0 to 49 do
    Rtree.insert t
      ~rect:(rect (float_of_int i) 0. 1. 1.)
      ~payload:(string_of_int i)
  done;
  Alcotest.(check bool) "delete" true
    (Rtree.delete t ~rect:(rect 7. 0. 1. 1.) ~payload:"7");
  Alcotest.(check bool) "double delete" false
    (Rtree.delete t ~rect:(rect 7. 0. 1. 1.) ~payload:"7");
  Alcotest.(check bool) "wrong payload" false
    (Rtree.delete t ~rect:(rect 8. 0. 1. 1.) ~payload:"9");
  Alcotest.(check int) "count" 49 (Rtree.count t);
  match Rtree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_duplicate_rects () =
  let t = make_tree () in
  (* many entries with identical rectangles, distinct payloads *)
  for i = 0 to 99 do
    Rtree.insert t ~rect:(rect 5. 5. 1. 1.) ~payload:(string_of_int i)
  done;
  Alcotest.(check int) "all kept" 100 (Rtree.count t);
  let hits = Rtree.search_enclosed_by t (rect 0. 0. 10. 10.) in
  Alcotest.(check int) "all found" 100 (List.length hits);
  Alcotest.(check bool) "delete one" true
    (Rtree.delete t ~rect:(rect 5. 5. 1. 1.) ~payload:"42");
  Alcotest.(check int) "one gone" 99 (Rtree.count t)

(* Property: search results match a naive scan over a random set. *)
let prop_search_matches_naive =
  QCheck.Test.make ~name:"rtree search = naive filter" ~count:40
    QCheck.(
      list_of_size (Gen.int_range 1 120)
        (quad (float_range 0. 100.) (float_range 0. 100.)
           (float_range 0.1 20.) (float_range 0.1 20.)))
    (fun rects ->
      let t = make_tree () in
      let entries =
        List.mapi
          (fun i (x, y, w, h) ->
            let r = rect x y w h in
            Rtree.insert t ~rect:r ~payload:(string_of_int i);
            (r, string_of_int i))
          rects
      in
      (match Rtree.check_invariants t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      let q = rect 25. 25. 50. 50. in
      let naive p = List.filter (fun (r, _) -> p r) entries in
      let sort l = List.sort compare (List.map snd l) in
      sort (Rtree.search_overlapping t q)
      = sort (naive (fun r -> Rect.intersects r q))
      && sort (Rtree.search_enclosed_by t q)
         = sort (naive (fun r -> Rect.encloses q r))
      && sort (Rtree.search_enclosing t q)
         = sort (naive (fun r -> Rect.encloses r q)))

(* Property: insert/delete sequences keep invariants and contents. *)
let prop_model =
  QCheck.Test.make ~name:"rtree matches set model" ~count:40
    QCheck.(
      list
        (pair (int_range 0 30)
           (oneofl [ `Ins; `Del ])))
    (fun ops ->
      let t = make_tree () in
      let module S = Set.Make (Int) in
      let model = ref S.empty in
      let rect_of i = rect (float_of_int (i * 3)) (float_of_int (i * 7 mod 50)) 2. 2. in
      List.iter
        (fun (i, op) ->
          match op with
          | `Ins ->
            if not (S.mem i !model) then begin
              Rtree.insert t ~rect:(rect_of i) ~payload:(string_of_int i);
              model := S.add i !model
            end
          | `Del ->
            let deleted =
              Rtree.delete t ~rect:(rect_of i) ~payload:(string_of_int i)
            in
            if deleted <> S.mem i !model then QCheck.Test.fail_report "delete mismatch";
            model := S.remove i !model)
        ops;
      (match Rtree.check_invariants t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      let contents = ref [] in
      Rtree.iter t (fun _ p -> contents := int_of_string p :: !contents);
      List.sort_uniq compare !contents = S.elements !model)

let suite =
  [
    Alcotest.test_case "rect operations" `Quick test_rect_ops;
    Alcotest.test_case "insert + search (200)" `Quick test_insert_search;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "duplicate rectangles" `Quick test_duplicate_rects;
    QCheck_alcotest.to_alcotest prop_search_matches_naive;
    QCheck_alcotest.to_alcotest prop_model;
  ]
