(* End-to-end tests of the extension architecture: two-step modification
   dispatch, attached procedures, veto -> partial rollback, savepoints,
   deferred actions, cascading modifications. *)
open Dmx_value
open Dmx_core
open Test_util
module Ddl = Dmx_ddl.Ddl
module Relation = Dmx_core.Relation

let setup_emp ?(storage_method = "heap") ?(attrs = []) services =
  let ctx = Services.begin_txn services in
  let desc =
    check_ok "create emp"
      (Ddl.create_relation ctx ~name:"employee" ~schema:emp_schema
         ~storage_method ~attrs ())
  in
  (ctx, desc)

let insert_emps ctx desc rows =
  List.map
    (fun (i, n, d, s) ->
      check_ok "insert" (Relation.insert ctx desc (emp i n d s)))
    rows

let base_rows =
  [
    (1, "alice", "eng", 120);
    (2, "bob", "eng", 100);
    (3, "carol", "ops", 90);
    (4, "dave", "hr", 80);
  ]

(* ---- heap + b-tree index ---- *)

let test_heap_btree_index () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "index"
    (Ddl.create_attachment ctx ~relation:"employee"
       ~attachment_type:"btree_index" ~name:"emp_dept"
       ~attrs:[ ("fields", "dept") ] ());
  let keys = insert_emps ctx desc base_rows in
  Alcotest.(check int) "count" 4 (count_records ctx desc);
  (* direct-by-key access via the attachment: input key -> record keys *)
  let at_id = Option.get (Registry.attachment_id "btree_index") in
  let instance =
    Option.get (Dmx_attach.Btree_index.instance_number desc ~name:"emp_dept")
  in
  let hits =
    check_ok "lookup"
      (Relation.lookup ctx desc ~attachment_id:at_id ~instance
         ~key:[| vs "eng" |])
  in
  Alcotest.(check int) "two eng" 2 (List.length hits);
  (* each returned record key fetches the record via the storage method *)
  List.iter
    (fun key ->
      match check_ok "fetch" (Relation.fetch ctx desc key ()) with
      | Some r -> Alcotest.check value_testable "dept" (vs "eng") r.(2)
      | None -> Alcotest.fail "dangling index entry")
    hits;
  (* delete maintains the index *)
  ignore (check_ok "delete" (Relation.delete ctx desc (List.nth keys 0)));
  let hits =
    check_ok "lookup2"
      (Relation.lookup ctx desc ~attachment_id:at_id ~instance
         ~key:[| vs "eng" |])
  in
  Alcotest.(check int) "one eng left" 1 (List.length hits);
  Services.commit services ctx

let test_unique_index_veto () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "unique index"
    (Ddl.create_attachment ctx ~relation:"employee"
       ~attachment_type:"btree_index" ~name:"emp_pk"
       ~attrs:[ ("fields", "id"); ("unique", "true") ] ());
  ignore (insert_emps ctx desc base_rows);
  (* duplicate id: the unique index vetoes; the heap insert must be undone *)
  (match Relation.insert ctx desc (emp 1 "evil" "eng" 1) with
  | Error (Error.Veto _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "duplicate accepted");
  Alcotest.(check int) "storage change undone" 4 (count_records ctx desc);
  (* and the transaction is still usable (partial rollback, not abort) *)
  ignore (check_ok "next insert" (Relation.insert ctx desc (emp 9 "zoe" "ops" 70)));
  Alcotest.(check int) "subsequent insert ok" 5 (count_records ctx desc);
  Services.commit services ctx

let test_check_constraint () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "check"
    (Ddl.create_attachment ctx ~relation:"employee" ~attachment_type:"check"
       ~name:"positive_salary"
       ~attrs:[ ("predicate", "salary > 0") ] ());
  ignore (insert_emps ctx desc base_rows);
  (match Relation.insert ctx desc (emp 5 "eve" "eng" (-1)) with
  | Error (Error.Veto _) -> ()
  | other ->
    Alcotest.failf "negative salary accepted: %s"
      (match other with Ok _ -> "ok" | Error e -> Error.to_string e));
  Alcotest.(check int) "undone" 4 (count_records ctx desc);
  (* NULL salary passes (UNKNOWN is not a violation) *)
  ignore
    (check_ok "null ok"
       (Relation.insert ctx desc [| vi 6; vs "may"; vs "eng"; Value.Null |]));
  (* update is checked too *)
  let keys = all_records ctx desc in
  ignore keys;
  Services.commit services ctx

let test_deferred_check_veto_at_commit () =
  let services = fresh_services () in
  let ctx, desc0 = setup_emp services in
  ignore desc0;
  check_ok "deferred check"
    (Ddl.create_attachment ctx ~relation:"employee" ~attachment_type:"check"
       ~name:"deferred_salary"
       ~attrs:[ ("predicate", "salary < 1000"); ("deferred", "true") ] ());
  Services.commit services ctx;
  (* violating insert is accepted now... *)
  let ctx = Services.begin_txn services in
  let desc = check_ok "find" (Ddl.find_relation ctx "employee") in
  ignore (check_ok "insert" (Relation.insert ctx desc (emp 1 "rich" "eng" 5000)));
  ignore desc;
  (* ... and vetoed when the transaction reaches the prepared state *)
  (match Services.commit services ctx with
  | exception Error.Error (Error.Veto _) -> ()
  | () -> Alcotest.fail "deferred violation committed");
  (* the transaction was aborted and rolled back *)
  let ctx = Services.begin_txn services in
  let desc = check_ok "find" (Ddl.find_relation ctx "employee") in
  Alcotest.(check int) "rolled back" 0 (count_records ctx desc);
  Services.commit services ctx

let test_deferred_check_fix_before_commit () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "deferred check"
    (Ddl.create_attachment ctx ~relation:"employee" ~attachment_type:"check"
       ~name:"deferred_salary"
       ~attrs:[ ("predicate", "salary < 1000"); ("deferred", "true") ] ());
  (* insert a violating record, then fix it before commit: the deferred
     check sees the final state and passes *)
  let key =
    check_ok "insert" (Relation.insert ctx desc (emp 1 "rich" "eng" 5000))
  in
  let key' = check_ok "fix" (Relation.update ctx desc key (emp 1 "rich" "eng" 900)) in
  ignore key';
  Services.commit services ctx;
  let ctx = Services.begin_txn services in
  let desc = check_ok "find" (Ddl.find_relation ctx "employee") in
  Alcotest.(check int) "committed" 1 (count_records ctx desc);
  Services.commit services ctx

(* ---- referential integrity ---- *)

let dept_schema =
  Schema.make_exn
    [
      Schema.column ~nullable:false "name" Value.Tstring;
      Schema.column "building" Value.Tstring;
    ]

let setup_refint ?(on_delete = "restrict") services =
  let ctx = Services.begin_txn services in
  let dept =
    check_ok "create dept"
      (Ddl.create_relation ctx ~name:"dept" ~schema:dept_schema
         ~storage_method:"heap" ())
  in
  let empd =
    check_ok "create emp"
      (Ddl.create_relation ctx ~name:"employee" ~schema:emp_schema
         ~storage_method:"heap" ())
  in
  check_ok "refint"
    (Ddl.create_attachment ctx ~relation:"employee" ~attachment_type:"refint"
       ~name:"emp_dept_fk"
       ~attrs:
         [
           ("fields", "dept");
           ("parent", "dept");
           ("parent_fields", "name");
           ("on_delete", on_delete);
         ]
       ());
  ignore (check_ok "d1" (Relation.insert ctx dept [| vs "eng"; vs "b1" |]));
  ignore (check_ok "d2" (Relation.insert ctx dept [| vs "ops"; vs "b2" |]));
  (ctx, dept, empd)

let test_refint_orphan_veto () =
  let services = fresh_services () in
  let ctx, _dept, empd = setup_refint services in
  ignore (check_ok "ok child" (Relation.insert ctx empd (emp 1 "a" "eng" 10)));
  (match Relation.insert ctx empd (emp 2 "b" "nosuch" 10) with
  | Error (Error.Veto _) -> ()
  | _ -> Alcotest.fail "orphan accepted");
  Alcotest.(check int) "orphan undone" 1 (count_records ctx empd);
  (* NULL foreign key passes *)
  ignore
    (check_ok "null fk"
       (Relation.insert ctx empd [| vi 3; vs "c"; Value.Null; vi 10 |]));
  Services.commit services ctx

let test_refint_restrict () =
  let services = fresh_services () in
  let ctx, dept, empd = setup_refint services in
  ignore (check_ok "child" (Relation.insert ctx empd (emp 1 "a" "eng" 10)));
  (* find the parent record's key *)
  let scan = check_ok "scan" (Relation.scan ctx dept ()) in
  let parents = Scan_help.record_scan_to_list scan in
  let eng_key, _ =
    List.find (fun (_, r) -> r.(0) = vs "eng") parents
  in
  (match Relation.delete ctx dept eng_key with
  | Error (Error.Veto _) -> ()
  | _ -> Alcotest.fail "restrict did not veto");
  Alcotest.(check int) "parent still there" 2 (count_records ctx dept);
  Services.commit services ctx

let test_refint_cascade () =
  let services = fresh_services () in
  let ctx, dept, empd = setup_refint ~on_delete:"cascade" services in
  ignore (check_ok "e1" (Relation.insert ctx empd (emp 1 "a" "eng" 10)));
  ignore (check_ok "e2" (Relation.insert ctx empd (emp 2 "b" "eng" 20)));
  ignore (check_ok "e3" (Relation.insert ctx empd (emp 3 "c" "ops" 30)));
  let scan = check_ok "scan" (Relation.scan ctx dept ()) in
  let parents = Scan_help.record_scan_to_list scan in
  let eng_key, _ = List.find (fun (_, r) -> r.(0) = vs "eng") parents in
  ignore (check_ok "cascade delete" (Relation.delete ctx dept eng_key));
  Alcotest.(check int) "children cascaded" 1 (count_records ctx empd);
  Alcotest.(check int) "parent gone" 1 (count_records ctx dept);
  Services.commit services ctx

(* ---- triggers ---- *)

let test_trigger_audit_and_veto () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "audit trigger"
    (Ddl.create_attachment ctx ~relation:"employee" ~attachment_type:"trigger"
       ~name:"audit_all"
       ~attrs:[ ("function", "audit"); ("events", "insert,update,delete") ] ());
  check_ok "veto trigger"
    (Ddl.create_attachment ctx ~relation:"employee" ~attachment_type:"trigger"
       ~name:"no_friday"
       ~attrs:[ ("function", "no_friday"); ("events", "insert") ] ());
  audit_log := [];
  let key = check_ok "ins" (Relation.insert ctx desc (emp 1 "a" "eng" 1)) in
  ignore (check_ok "upd" (Relation.update ctx desc key (emp 1 "a" "eng" 2)));
  Alcotest.(check (list string))
    "audit entries"
    [ "update employee"; "insert employee" ]
    !audit_log;
  (* vetoing trigger: record named "friday" is rejected *)
  (match Relation.insert ctx desc (emp 2 "friday" "eng" 1) with
  | Error (Error.Veto _) -> ()
  | _ -> Alcotest.fail "trigger veto missing");
  Alcotest.(check int) "undone" 1 (count_records ctx desc);
  Services.commit services ctx

(* ---- savepoints and abort ---- *)

let test_savepoint_partial_rollback () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "index"
    (Ddl.create_attachment ctx ~relation:"employee"
       ~attachment_type:"btree_index" ~name:"emp_id"
       ~attrs:[ ("fields", "id") ] ());
  ignore (check_ok "a" (Relation.insert ctx desc (emp 1 "a" "eng" 1)));
  ignore (check_ok "b" (Relation.insert ctx desc (emp 2 "b" "eng" 2)));
  Services.savepoint ctx "sp1";
  ignore (check_ok "c" (Relation.insert ctx desc (emp 3 "c" "eng" 3)));
  ignore (check_ok "d" (Relation.insert ctx desc (emp 4 "d" "eng" 4)));
  Alcotest.(check int) "before rollback" 4 (count_records ctx desc);
  Services.rollback_to ctx "sp1";
  Alcotest.(check int) "after rollback" 2 (count_records ctx desc);
  (* the index followed the rollback *)
  let at_id = Option.get (Registry.attachment_id "btree_index") in
  let instance =
    Option.get (Dmx_attach.Btree_index.instance_number desc ~name:"emp_id")
  in
  Alcotest.(check int) "index entry gone" 0
    (List.length
       (check_ok "lookup"
          (Relation.lookup ctx desc ~attachment_id:at_id ~instance
             ~key:[| vi 3 |])));
  Alcotest.(check int) "index entry kept" 1
    (List.length
       (check_ok "lookup"
          (Relation.lookup ctx desc ~attachment_id:at_id ~instance
             ~key:[| vi 2 |])));
  (* savepoint remains established: work after it can be rolled back again *)
  ignore (check_ok "e" (Relation.insert ctx desc (emp 5 "e" "eng" 5)));
  Services.rollback_to ctx "sp1";
  Alcotest.(check int) "rollback again" 2 (count_records ctx desc);
  Services.commit services ctx

let test_abort_rolls_back_everything () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  Services.commit services ctx;
  ignore desc;
  let ctx = Services.begin_txn services in
  let desc = check_ok "find" (Ddl.find_relation ctx "employee") in
  ignore (insert_emps ctx desc base_rows);
  Alcotest.(check int) "inserted" 4 (count_records ctx desc);
  Services.abort services ctx;
  let ctx = Services.begin_txn services in
  let desc = check_ok "find" (Ddl.find_relation ctx "employee") in
  Alcotest.(check int) "all gone" 0 (count_records ctx desc);
  Services.commit services ctx

let test_ddl_rollback () =
  let services = fresh_services () in
  let ctx, _desc = setup_emp services in
  Services.abort services ctx;
  (* the relation creation was undone *)
  let ctx = Services.begin_txn services in
  (match Ddl.find_relation ctx "employee" with
  | Error (Error.No_such_relation _) -> ()
  | _ -> Alcotest.fail "uncommitted relation survived abort");
  Services.commit services ctx

let test_drop_relation_rollback () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  ignore (insert_emps ctx desc base_rows);
  Services.commit services ctx;
  let ctx = Services.begin_txn services in
  check_ok "drop" (Ddl.drop_relation ctx ~name:"employee");
  (match Ddl.find_relation ctx "employee" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dropped relation still visible");
  Services.abort services ctx;
  (* drop undone: relation and its contents are back (deferred destroy never
     ran because the transaction aborted) *)
  let ctx = Services.begin_txn services in
  let desc = check_ok "find after abort" (Ddl.find_relation ctx "employee") in
  Alcotest.(check int) "contents intact" 4 (count_records ctx desc);
  Services.commit services ctx

(* ---- update with key change ---- *)

let test_update_changes_key_btree_org () =
  let services = fresh_services () in
  let ctx, desc =
    setup_emp ~storage_method:"btree" ~attrs:[ ("key", "id") ] services
  in
  check_ok "dept index"
    (Ddl.create_attachment ctx ~relation:"employee"
       ~attachment_type:"btree_index" ~name:"emp_dept"
       ~attrs:[ ("fields", "dept") ] ());
  let keys = insert_emps ctx desc base_rows in
  (* change the record's key field: record key changes, index follows *)
  let key1 = List.nth keys 0 in
  let new_key =
    check_ok "update key field"
      (Relation.update ctx desc key1 (emp 10 "alice" "sales" 120))
  in
  Alcotest.(check bool) "key changed" false (Record_key.equal key1 new_key);
  (match check_ok "fetch new" (Relation.fetch ctx desc new_key ()) with
  | Some r -> Alcotest.check value_testable "name" (vs "alice") r.(1)
  | None -> Alcotest.fail "record not under new key");
  (match check_ok "fetch old" (Relation.fetch ctx desc key1 ()) with
  | None -> ()
  | Some _ -> Alcotest.fail "record still under old key");
  let at_id = Option.get (Registry.attachment_id "btree_index") in
  let instance =
    Option.get (Dmx_attach.Btree_index.instance_number desc ~name:"emp_dept")
  in
  let sales =
    check_ok "lookup sales"
      (Relation.lookup ctx desc ~attachment_id:at_id ~instance
         ~key:[| vs "sales" |])
  in
  Alcotest.(check int) "index maintained" 1 (List.length sales);
  Services.commit services ctx

let test_btree_org_ordered_scan () =
  let services = fresh_services () in
  let ctx, desc =
    setup_emp ~storage_method:"btree" ~attrs:[ ("key", "id") ] services
  in
  ignore (insert_emps ctx desc (List.rev base_rows));
  let records =
    let scan = check_ok "scan" (Relation.scan ctx desc ()) in
    Scan_help.record_scan_to_list scan |> List.map snd
  in
  Alcotest.(check (list int)) "key order"
    [ 1; 2; 3; 4 ]
    (List.map (fun r -> Int64.to_int (Option.get (Value.to_int r.(0)))) records);
  (* duplicate key refused by the storage method itself *)
  (match Relation.insert ctx desc (emp 1 "dup" "x" 0) with
  | Error (Error.Duplicate_key _) -> ()
  | _ -> Alcotest.fail "duplicate key accepted");
  (* bounded key-sequential access *)
  let scan =
    check_ok "range scan"
      (Relation.scan ctx desc ~lo:(Intf.Incl [| vi 2 |])
         ~hi:(Intf.Incl [| vi 3 |]) ())
  in
  Alcotest.(check int) "bounded" 2
    (List.length (Scan_help.record_scan_to_list scan));
  Services.commit services ctx

(* ---- stats attachment ---- *)

let test_stats_attachment () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "stats"
    (Ddl.create_attachment ctx ~relation:"employee" ~attachment_type:"stats"
       ~name:"emp_stats" ~attrs:[ ("fields", "salary") ] ());
  ignore (insert_emps ctx desc base_rows);
  let stats () =
    Option.get (Dmx_attach.Stats.get ctx desc ~name:"emp_stats")
  in
  let s = stats () in
  Alcotest.(check int) "count" 4 s.Dmx_attach.Stats.live_count;
  let f = List.hd s.per_field in
  Alcotest.(check int64) "sum" 390L f.Dmx_attach.Stats.sum;
  Alcotest.check value_testable "min" (vi 80) f.min_seen;
  Alcotest.check value_testable "max" (vi 120) f.max_seen;
  (* savepoint + rollback restores counts and sums *)
  Services.savepoint ctx "sp";
  ignore (check_ok "ins" (Relation.insert ctx desc (emp 9 "x" "eng" 1000)));
  Alcotest.(check int64) "sum grew" 1390L (List.hd (stats ()).per_field).sum;
  Services.rollback_to ctx "sp";
  Alcotest.(check int64) "sum restored" 390L (List.hd (stats ()).per_field).sum;
  Alcotest.(check int) "count restored" 4 (stats ()).live_count;
  Services.commit services ctx

(* ---- hash index ---- *)

let test_hash_index () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "hash"
    (Ddl.create_attachment ctx ~relation:"employee"
       ~attachment_type:"hash_index" ~name:"emp_hash"
       ~attrs:[ ("fields", "id"); ("buckets", "8"); ("unique", "true") ] ());
  ignore (insert_emps ctx desc base_rows);
  let at_id = Option.get (Registry.attachment_id "hash_index") in
  let hits =
    check_ok "lookup"
      (Relation.lookup ctx desc ~attachment_id:at_id ~instance:1
         ~key:[| vi 3 |])
  in
  Alcotest.(check int) "hash hit" 1 (List.length hits);
  (match check_ok "fetch" (Relation.fetch ctx desc (List.hd hits) ()) with
  | Some r -> Alcotest.check value_testable "carol" (vs "carol") r.(1)
  | None -> Alcotest.fail "dangling");
  (* unique veto *)
  (match Relation.insert ctx desc (emp 3 "dup" "x" 0) with
  | Error (Error.Veto _) -> ()
  | _ -> Alcotest.fail "hash unique violated");
  Services.commit services ctx

(* ---- join index ---- *)

let test_join_index () =
  let services = fresh_services () in
  let ctx = Services.begin_txn services in
  let dept =
    check_ok "dept"
      (Ddl.create_relation ctx ~name:"dept" ~schema:dept_schema
         ~storage_method:"heap" ())
  in
  let empd =
    check_ok "emp"
      (Ddl.create_relation ctx ~name:"employee" ~schema:emp_schema
         ~storage_method:"heap" ())
  in
  ignore (check_ok "d1" (Relation.insert ctx dept [| vs "eng"; vs "b1" |]));
  ignore (check_ok "d2" (Relation.insert ctx dept [| vs "ops"; vs "b2" |]));
  ignore (check_ok "e1" (Relation.insert ctx empd (emp 1 "a" "eng" 10)));
  (* created after some records exist: precomputes the join *)
  check_ok "join index"
    (Ddl.create_attachment ctx ~relation:"employee"
       ~attachment_type:"join_index" ~name:"emp_dept_ji"
       ~attrs:[ ("field", "dept"); ("other", "dept"); ("other_field", "name") ]
       ());
  Alcotest.(check int) "initial pairs" 1
    (List.length (Dmx_attach.Join_index.pairs ctx empd ~name:"emp_dept_ji"));
  (* maintenance from the employee side *)
  let k2 = check_ok "e2" (Relation.insert ctx empd (emp 2 "b" "eng" 20)) in
  ignore (check_ok "e3" (Relation.insert ctx empd (emp 3 "c" "ops" 30)));
  Alcotest.(check int) "pairs grow" 3
    (List.length (Dmx_attach.Join_index.pairs ctx empd ~name:"emp_dept_ji"));
  (* maintenance from the dept (mirror) side *)
  ignore (check_ok "d3" (Relation.insert ctx dept [| vs "hr"; vs "b3" |]));
  Alcotest.(check int) "no hr employees yet" 3
    (List.length (Dmx_attach.Join_index.pairs ctx empd ~name:"emp_dept_ji"));
  ignore (check_ok "e4" (Relation.insert ctx empd (emp 4 "d" "hr" 40)));
  Alcotest.(check int) "hr pair added" 4
    (List.length (Dmx_attach.Join_index.pairs ctx empd ~name:"emp_dept_ji"));
  (* delete a record: its pairs disappear *)
  ignore (check_ok "del" (Relation.delete ctx empd k2));
  Alcotest.(check int) "pair removed" 3
    (List.length (Dmx_attach.Join_index.pairs ctx empd ~name:"emp_dept_ji"));
  (* the dept side sees the same pairs, reversed *)
  let dept_pairs = Dmx_attach.Join_index.pairs ctx dept ~name:"emp_dept_ji" in
  Alcotest.(check int) "mirror view" 3 (List.length dept_pairs);
  Services.commit services ctx

(* ---- read-only ("optical") storage ---- *)

let test_readonly_seal () =
  let services = fresh_services () in
  let ctx, desc = setup_emp ~storage_method:"readonly" services in
  ignore (insert_emps ctx desc base_rows);
  (* updates and deletes refused even before sealing *)
  let scan = check_ok "scan" (Relation.scan ctx desc ()) in
  let (k, r) = List.hd (Scan_help.record_scan_to_list scan) in
  (match Relation.update ctx desc k r with
  | Error (Error.Read_only _) -> ()
  | _ -> Alcotest.fail "update on write-once accepted");
  (match Relation.delete ctx desc k with
  | Error (Error.Read_only _) -> ()
  | _ -> Alcotest.fail "delete on write-once accepted");
  Dmx_smethod.Readonly.seal ctx desc;
  (match Relation.insert ctx desc (emp 99 "late" "x" 0) with
  | Error (Error.Read_only _) -> ()
  | _ -> Alcotest.fail "insert after seal accepted");
  Alcotest.(check int) "published contents" 4 (count_records ctx desc);
  Services.commit services ctx

(* ---- foreign storage method ---- *)

let test_foreign_gateway () =
  let services = fresh_services () in
  let srv = Dmx_smethod.Remote_server.create ~name:"mainframe" in
  Dmx_smethod.Remote_server.reset_stats srv;
  let ctx, desc =
    setup_emp ~storage_method:"foreign"
      ~attrs:[ ("server", "mainframe"); ("relation", "emp_remote") ]
      services
  in
  let keys = insert_emps ctx desc base_rows in
  Alcotest.(check int) "remote count" 4 (count_records ctx desc);
  Alcotest.(check bool) "messages exchanged" true
    (Dmx_smethod.Remote_server.message_count srv > 4);
  ignore (check_ok "delete" (Relation.delete ctx desc (List.hd keys)));
  Alcotest.(check int) "after delete" 3 (count_records ctx desc);
  Services.commit services ctx;
  (* abort sends compensating messages *)
  let ctx = Services.begin_txn services in
  let desc = check_ok "find" (Ddl.find_relation ctx "employee") in
  ignore (check_ok "ins" (Relation.insert ctx desc (emp 50 "x" "y" 1)));
  Alcotest.(check int) "visible remotely" 4 (count_records ctx desc);
  Services.abort services ctx;
  let ctx = Services.begin_txn services in
  let desc = check_ok "find" (Ddl.find_relation ctx "employee") in
  Alcotest.(check int) "compensated" 3 (count_records ctx desc);
  Services.commit services ctx

(* ---- memory storage method ---- *)

let test_memory_storage () =
  let services = fresh_services () in
  let ctx, desc = setup_emp ~storage_method:"memory" services in
  let keys = insert_emps ctx desc base_rows in
  Alcotest.(check int) "count" 4 (count_records ctx desc);
  ignore (check_ok "upd" (Relation.update ctx desc (List.hd keys) (emp 1 "a2" "x" 0)));
  Services.savepoint ctx "sp";
  ignore (check_ok "del" (Relation.delete ctx desc (List.nth keys 1)));
  Alcotest.(check int) "deleted" 3 (count_records ctx desc);
  Services.rollback_to ctx "sp";
  Alcotest.(check int) "restored" 4 (count_records ctx desc);
  Services.commit services ctx

(* ---- scan position semantics through the architecture ---- *)

let test_scan_positions_after_partial_rollback () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  ignore (insert_emps ctx desc base_rows);
  let scan = check_ok "scan" (Relation.scan ctx desc ()) in
  let step () = Option.get (scan.Intf.rs_next ()) in
  let _k1, r1 = step () in
  Alcotest.check value_testable "first" (vi 1) r1.(0);
  (* establish a savepoint: open scan positions are captured *)
  Services.savepoint ctx "sp";
  let _, r2 = step () in
  Alcotest.check value_testable "second" (vi 2) r2.(0);
  let _, r3 = step () in
  Alcotest.check value_testable "third" (vi 3) r3.(0);
  (* partial rollback restores the scan position to "on record 1" *)
  Services.rollback_to ctx "sp";
  let _, r2' = step () in
  Alcotest.check value_testable "replay second" (vi 2) r2'.(0);
  Services.commit services ctx

let test_veto_does_not_disturb_scan () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "check"
    (Ddl.create_attachment ctx ~relation:"employee" ~attachment_type:"check"
       ~name:"pos" ~attrs:[ ("predicate", "salary > 0") ] ());
  ignore (insert_emps ctx desc base_rows);
  let scan = check_ok "scan" (Relation.scan ctx desc ()) in
  let step () = Option.get (scan.Intf.rs_next ()) in
  let _, r1 = step () in
  Alcotest.check value_testable "first" (vi 1) r1.(0);
  (* a vetoed modification mid-scan performs a partial rollback; the open
     scan must keep its position *)
  (match Relation.insert ctx desc (emp 9 "bad" "x" (-5)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "veto expected");
  let _, r2 = step () in
  Alcotest.check value_testable "continues" (vi 2) r2.(0);
  Services.commit services ctx

(* "Partial transaction rollback is used, not only to recover from vetoed
   relation modifications, but also to undo the partial effects of (complex)
   data definition operations" (paper p. 224). *)
let test_ddl_partial_rollback () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  ignore (insert_emps ctx desc base_rows);
  Services.savepoint ctx "before_ddl";
  check_ok "index"
    (Ddl.create_attachment ctx ~relation:"employee"
       ~attachment_type:"btree_index" ~name:"mid_txn"
       ~attrs:[ ("fields", "id") ] ());
  ignore (check_ok "ins" (Relation.insert ctx desc (emp 9 "z" "eng" 9)));
  Alcotest.(check bool) "index exists" true
    (Dmx_attach.Btree_index.instance_number desc ~name:"mid_txn" <> None);
  Services.rollback_to ctx "before_ddl";
  (* the attachment creation was undone along with the insert *)
  Alcotest.(check bool) "index gone" true
    (Dmx_attach.Btree_index.instance_number desc ~name:"mid_txn" = None);
  Alcotest.(check int) "insert undone" 4 (count_records ctx desc);
  (* the relation remains fully usable *)
  ignore (check_ok "post" (Relation.insert ctx desc (emp 10 "p" "eng" 10)));
  Services.commit services ctx;
  (* and a relation created after a savepoint disappears on rollback *)
  let ctx = Services.begin_txn services in
  Services.savepoint ctx "sp";
  ignore
    (check_ok "create2"
       (Ddl.create_relation ctx ~name:"ephemeral" ~schema:emp_schema
          ~storage_method:"heap" ()));
  Services.rollback_to ctx "sp";
  (match Ddl.find_relation ctx "ephemeral" with
  | Error (Error.No_such_relation _) -> ()
  | _ -> Alcotest.fail "relation survived partial rollback");
  Services.commit services ctx

(* "data management extensions must be made 'at the factory'": registration
   after the database has opened is refused. *)
let test_registry_frozen_after_open () =
  let services = fresh_services () in
  ignore services;
  Alcotest.(check bool) "frozen" true (Registry.is_frozen ());
  (* re-registering an existing module is fine (memoised id)... *)
  Alcotest.(check int) "idempotent" (Dmx_smethod.Heap.id ())
    (Dmx_smethod.Heap.register ());
  (* ...but binding a brand-new extension now is refused *)
  let module Rogue = struct
    let name = "rogue"
    let attr_specs = []
    let create _ ~rel_id:_ _ _ = Error (Error.Internal "unused")
    let destroy _ ~rel_id:_ ~smethod_desc:_ = ()
    let insert _ _ _ = Error (Error.Internal "unused")
    let update _ _ _ _ = Error (Error.Internal "unused")
    let delete _ _ _ = Error (Error.Internal "unused")
    let fetch _ _ _ ?fields:_ () = None
    let scan _ _ ?lo:_ ?hi:_ ?filter:_ () =
      { Intf.rs_next = (fun () -> None);
        rs_close = ignore;
        rs_capture = (fun () -> ignore) }
    let key_fields _ = None
    let record_count _ _ = 0
    let estimate_scan _ _ ~eligible:_ =
      { Dmx_core.Cost.cost = Dmx_core.Cost.zero; est_rows = 0.;
        matched = []; residual = []; ordered_by = None }
    let undo _ ~rel_id:_ ~data:_ = ()
  end in
  match Registry.register_storage_method (module Rogue) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "registration after open accepted"

(* every code path must unpin what it pins: after a workload with scans,
   index maintenance, veto rollbacks and lookups, no frame stays pinned
   (drop_cache refuses if one does) *)
let test_no_pin_leaks () =
  let services = fresh_services () in
  let ctx, desc = setup_emp services in
  check_ok "pk"
    (Ddl.create_attachment ctx ~relation:"employee"
       ~attachment_type:"btree_index" ~name:"pk"
       ~attrs:[ ("fields", "id"); ("unique", "true") ] ());
  check_ok "check"
    (Ddl.create_attachment ctx ~relation:"employee" ~attachment_type:"check"
       ~name:"pos" ~attrs:[ ("predicate", "salary > 0") ] ());
  ignore (insert_emps ctx desc base_rows);
  ignore (Relation.insert ctx desc (emp 1 "dup" "x" 1));  (* veto path *)
  ignore (Relation.insert ctx desc (emp 9 "neg" "x" (-1)));  (* veto path *)
  let scan = check_ok "scan" (Relation.scan ctx desc ()) in
  ignore (scan.Intf.rs_next ());
  scan.rs_close ();
  let at_id = Option.get (Registry.attachment_id "btree_index") in
  ignore
    (check_ok "lookup"
       (Relation.lookup ctx desc ~attachment_id:at_id ~instance:1
          ~key:[| vi 2 |]));
  Services.savepoint ctx "sp";
  ignore (Relation.delete ctx desc (List.hd (List.map fst (
      Dmx_core.Scan_help.record_scan_to_list
        (check_ok "s2" (Relation.scan ctx desc ()))))));
  Services.rollback_to ctx "sp";
  Services.commit services ctx;
  Dmx_page.Buffer_pool.flush_all services.Services.bp;
  match Dmx_page.Buffer_pool.drop_cache services.Services.bp with
  | () -> ()
  | exception Failure msg -> Alcotest.failf "pin leak: %s" msg

let suite =
  [
    Alcotest.test_case "heap + btree index" `Quick test_heap_btree_index;
    Alcotest.test_case "no buffer-pool pin leaks" `Quick test_no_pin_leaks;
    Alcotest.test_case "registry frozen after open" `Quick
      test_registry_frozen_after_open;
    Alcotest.test_case "DDL undone by partial rollback" `Quick
      test_ddl_partial_rollback;
    Alcotest.test_case "unique index veto + partial rollback" `Quick
      test_unique_index_veto;
    Alcotest.test_case "check constraint" `Quick test_check_constraint;
    Alcotest.test_case "deferred check vetoes at commit" `Quick
      test_deferred_check_veto_at_commit;
    Alcotest.test_case "deferred check passes after fix" `Quick
      test_deferred_check_fix_before_commit;
    Alcotest.test_case "refint orphan veto" `Quick test_refint_orphan_veto;
    Alcotest.test_case "refint restrict" `Quick test_refint_restrict;
    Alcotest.test_case "refint cascade delete" `Quick test_refint_cascade;
    Alcotest.test_case "triggers: audit + veto" `Quick
      test_trigger_audit_and_veto;
    Alcotest.test_case "savepoint partial rollback" `Quick
      test_savepoint_partial_rollback;
    Alcotest.test_case "abort rolls back" `Quick
      test_abort_rolls_back_everything;
    Alcotest.test_case "DDL rollback" `Quick test_ddl_rollback;
    Alcotest.test_case "drop relation rollback" `Quick
      test_drop_relation_rollback;
    Alcotest.test_case "update changing record key" `Quick
      test_update_changes_key_btree_org;
    Alcotest.test_case "btree-organised storage" `Quick
      test_btree_org_ordered_scan;
    Alcotest.test_case "stats attachment" `Quick test_stats_attachment;
    Alcotest.test_case "hash index" `Quick test_hash_index;
    Alcotest.test_case "join index" `Quick test_join_index;
    Alcotest.test_case "read-only storage" `Quick test_readonly_seal;
    Alcotest.test_case "foreign gateway" `Quick test_foreign_gateway;
    Alcotest.test_case "memory storage" `Quick test_memory_storage;
    Alcotest.test_case "scan position after partial rollback" `Quick
      test_scan_positions_after_partial_rollback;
    Alcotest.test_case "veto preserves open scans" `Quick
      test_veto_does_not_disturb_scan;
  ]
