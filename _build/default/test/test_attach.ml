(* Attachment edge cases: multiple instances per type, hash overflow chains,
   referential updates, deferred refint, attachment DDL validation. *)
open Dmx_value
open Dmx_core
open Test_util
module Ddl = Dmx_ddl.Ddl
module Relation = Dmx_core.Relation

let setup services =
  let ctx = Services.begin_txn services in
  let desc =
    check_ok "create"
      (Ddl.create_relation ctx ~name:"t" ~schema:emp_schema
         ~storage_method:"heap" ())
  in
  (ctx, desc)

let test_multiple_instances_one_slot () =
  let services = fresh_services () in
  let ctx, desc = setup services in
  (* three B-tree indexes: all live in the one btree_index descriptor slot *)
  List.iter
    (fun (name, fields) ->
      check_ok name
        (Ddl.create_attachment ctx ~relation:"t" ~attachment_type:"btree_index"
           ~name ~attrs:[ ("fields", fields) ] ()))
    [ ("by_id", "id"); ("by_dept", "dept"); ("by_dept_sal", "dept,salary") ];
  Alcotest.(check (list int)) "one slot used" [ 0 ]
    (Dmx_catalog.Descriptor.attachment_types_present desc);
  Alcotest.(check (list string)) "instances"
    [ "by_id"; "by_dept"; "by_dept_sal" ]
    (Dmx_attach.Btree_index.instance_names desc);
  (* all three are maintained by one attached-procedure call per insert *)
  ignore (check_ok "ins" (Relation.insert ctx desc (emp 1 "a" "eng" 10)));
  ignore (check_ok "ins" (Relation.insert ctx desc (emp 2 "b" "eng" 20)));
  let at_id = Option.get (Registry.attachment_id "btree_index") in
  let lookup instance key =
    List.length
      (check_ok "lookup" (Relation.lookup ctx desc ~attachment_id:at_id ~instance ~key))
  in
  Alcotest.(check int) "by_id" 1 (lookup 1 [| vi 1 |]);
  Alcotest.(check int) "by_dept" 2 (lookup 2 [| vs "eng" |]);
  Alcotest.(check int) "by_dept_sal prefix" 2 (lookup 3 [| vs "eng" |]);
  Alcotest.(check int) "by_dept_sal full" 1 (lookup 3 [| vs "eng"; vi 20 |]);
  (* dropping the middle instance leaves the others *)
  check_ok "drop"
    (Ddl.drop_attachment ctx ~relation:"t" ~attachment_type:"btree_index"
       ~name:"by_dept");
  Alcotest.(check (list string)) "two left" [ "by_id"; "by_dept_sal" ]
    (Dmx_attach.Btree_index.instance_names desc);
  ignore (check_ok "ins3" (Relation.insert ctx desc (emp 3 "c" "ops" 30)));
  Alcotest.(check int) "survivors maintained" 1 (lookup 1 [| vi 3 |]);
  Services.commit services ctx

let test_hash_overflow_chains () =
  let services = fresh_services () in
  let ctx, desc = setup services in
  (* 2 buckets + hundreds of entries: long overflow chains *)
  check_ok "hash"
    (Ddl.create_attachment ctx ~relation:"t" ~attachment_type:"hash_index"
       ~name:"h" ~attrs:[ ("fields", "id"); ("buckets", "2") ] ());
  for i = 1 to 400 do
    ignore (check_ok "ins" (Relation.insert ctx desc (emp i "x" "d" i)))
  done;
  let at_id = Option.get (Registry.attachment_id "hash_index") in
  for i = 1 to 400 do
    if i mod 13 = 0 then begin
      let hits =
        check_ok "lookup"
          (Relation.lookup ctx desc ~attachment_id:at_id ~instance:1
             ~key:[| vi i |])
      in
      Alcotest.(check int) (Fmt.str "find %d in chain" i) 1 (List.length hits)
    end
  done;
  (* deletes traverse chains too *)
  let scan = check_ok "scan" (Relation.scan ctx desc ()) in
  let all = Dmx_core.Scan_help.record_scan_to_list scan in
  List.iteri
    (fun i (key, _) ->
      if i mod 2 = 0 then ignore (check_ok "del" (Relation.delete ctx desc key)))
    all;
  let hits i =
    List.length
      (check_ok "lookup"
         (Relation.lookup ctx desc ~attachment_id:at_id ~instance:1
            ~key:[| vi i |]))
  in
  let live = ref 0 in
  for i = 1 to 400 do
    live := !live + hits i
  done;
  Alcotest.(check int) "chain deletes consistent" 200 !live;
  Services.commit services ctx

let test_refint_child_update () =
  let services = fresh_services () in
  let ctx = Services.begin_txn services in
  let dept_schema =
    Schema.make_exn
      [ Schema.column ~nullable:false "name" Value.Tstring ]
  in
  ignore
    (check_ok "dept"
       (Ddl.create_relation ctx ~name:"dept" ~schema:dept_schema
          ~storage_method:"heap" ()));
  let empd =
    check_ok "emp"
      (Ddl.create_relation ctx ~name:"emp" ~schema:emp_schema
         ~storage_method:"heap" ())
  in
  let dept = check_ok "find" (Ddl.find_relation ctx "dept") in
  ignore (check_ok "d1" (Relation.insert ctx dept [| vs "eng" |]));
  ignore (check_ok "d2" (Relation.insert ctx dept [| vs "ops" |]));
  check_ok "fk"
    (Ddl.create_attachment ctx ~relation:"emp" ~attachment_type:"refint"
       ~name:"fk"
       ~attrs:
         [ ("fields", "dept"); ("parent", "dept"); ("parent_fields", "name") ]
       ());
  let k = check_ok "child" (Relation.insert ctx empd (emp 1 "a" "eng" 1)) in
  (* updating the FK to another existing parent: fine *)
  let k =
    check_ok "update to ops" (Relation.update ctx empd k (emp 1 "a" "ops" 1))
  in
  (* updating to a missing parent: vetoed, and the update is undone *)
  (match Relation.update ctx empd k (emp 1 "a" "mars" 1) with
  | Error (Error.Veto _) -> ()
  | _ -> Alcotest.fail "orphaning update accepted");
  (match check_ok "fetch" (Relation.fetch ctx empd k ()) with
  | Some r -> Alcotest.check value_testable "still ops" (vs "ops") r.(2)
  | None -> Alcotest.fail "record lost");
  (* updating a non-FK field doesn't re-check (would pass anyway) *)
  ignore (check_ok "benign" (Relation.update ctx empd k (emp 1 "a2" "ops" 2)));
  Services.commit services ctx

let test_refint_deferred () =
  let services = fresh_services () in
  let ctx = Services.begin_txn services in
  let dept_schema =
    Schema.make_exn [ Schema.column ~nullable:false "name" Value.Tstring ]
  in
  ignore
    (check_ok "dept"
       (Ddl.create_relation ctx ~name:"dept" ~schema:dept_schema
          ~storage_method:"heap" ()));
  let empd =
    check_ok "emp"
      (Ddl.create_relation ctx ~name:"emp" ~schema:emp_schema
         ~storage_method:"heap" ())
  in
  check_ok "fk"
    (Ddl.create_attachment ctx ~relation:"emp" ~attachment_type:"refint"
       ~name:"fk"
       ~attrs:
         [
           ("fields", "dept"); ("parent", "dept"); ("parent_fields", "name");
           ("deferred", "true");
         ]
       ());
  (* child inserted before its parent: allowed now, checked at commit *)
  ignore (check_ok "child first" (Relation.insert ctx empd (emp 1 "a" "eng" 1)));
  let dept = check_ok "find" (Ddl.find_relation ctx "dept") in
  ignore (check_ok "parent later" (Relation.insert ctx dept [| vs "eng" |]));
  Services.commit services ctx;
  (* now the violating case: child without parent at commit time *)
  let ctx = Services.begin_txn services in
  let empd = check_ok "find" (Ddl.find_relation ctx "emp") in
  ignore (check_ok "orphan" (Relation.insert ctx empd (emp 2 "b" "mars" 1)));
  (match Services.commit services ctx with
  | exception Error.Error (Error.Veto _) -> ()
  | () -> Alcotest.fail "deferred orphan committed");
  let ctx = Services.begin_txn services in
  let empd = check_ok "find" (Ddl.find_relation ctx "emp") in
  Alcotest.(check int) "orphan rolled back" 1 (count_records ctx empd);
  Services.commit services ctx

let test_attachment_ddl_validation () =
  let services = fresh_services () in
  let ctx, _desc = setup services in
  let att ty name attrs =
    Ddl.create_attachment ctx ~relation:"t" ~attachment_type:ty ~name ~attrs ()
  in
  (* unknown fields *)
  (match att "btree_index" "i" [ ("fields", "nosuch") ] with
  | Error (Error.Ddl_error _) -> ()
  | _ -> Alcotest.fail "bad fields accepted");
  (* missing required *)
  (match att "btree_index" "i" [] with
  | Error (Error.Ddl_error _) -> ()
  | _ -> Alcotest.fail "missing fields accepted");
  (* bad predicate *)
  (match att "check" "c" [ ("predicate", "nosuchcol > 1") ] with
  | Error (Error.Ddl_error _) -> ()
  | _ -> Alcotest.fail "bad predicate accepted");
  (* rect needs exactly 4 columns *)
  (match att "rtree_index" "r" [ ("rect", "id,salary") ] with
  | Error (Error.Ddl_error _) -> ()
  | _ -> Alcotest.fail "bad rect accepted");
  (* unknown trigger function *)
  (match att "trigger" "tr" [ ("function", "nosuch"); ("events", "insert") ] with
  | Error (Error.Ddl_error _) -> ()
  | _ -> Alcotest.fail "unknown trigger function accepted");
  (* duplicate instance name *)
  check_ok "first" (att "btree_index" "dup" [ ("fields", "id") ]);
  (match att "btree_index" "dup" [ ("fields", "salary") ] with
  | Error (Error.Ddl_error _) -> ()
  | _ -> Alcotest.fail "duplicate instance name accepted");
  (* unknown attachment type *)
  (match att "martian" "m" [] with
  | Error (Error.Ddl_error _) -> ()
  | _ -> Alcotest.fail "unknown attachment type accepted");
  (* drop of a missing instance *)
  (match
     Ddl.drop_attachment ctx ~relation:"t" ~attachment_type:"btree_index"
       ~name:"nosuch"
   with
  | Error (Error.No_such_attachment _) -> ()
  | _ -> Alcotest.fail "dropping a missing instance succeeded");
  Services.abort services ctx

let test_index_build_from_existing () =
  let services = fresh_services () in
  let ctx, desc = setup services in
  ignore (check_ok "a" (Relation.insert ctx desc (emp 1 "a" "eng" 1)));
  ignore (check_ok "b" (Relation.insert ctx desc (emp 2 "b" "ops" 2)));
  (* index created after data: built from current contents *)
  check_ok "late index"
    (Ddl.create_attachment ctx ~relation:"t" ~attachment_type:"btree_index"
       ~name:"late" ~attrs:[ ("fields", "id") ] ());
  let at_id = Option.get (Registry.attachment_id "btree_index") in
  Alcotest.(check int) "existing indexed" 1
    (List.length
       (check_ok "lookup"
          (Relation.lookup ctx desc ~attachment_id:at_id ~instance:1
             ~key:[| vi 2 |])));
  (* a unique index over data that violates it is refused *)
  ignore (check_ok "dup salary" (Relation.insert ctx desc (emp 3 "c" "eng" 1)));
  (match
     Ddl.create_attachment ctx ~relation:"t" ~attachment_type:"btree_index"
       ~name:"u" ~attrs:[ ("fields", "salary"); ("unique", "true") ] ()
   with
  | Error (Error.Constraint_violation _) -> ()
  | _ -> Alcotest.fail "unique index built over duplicates");
  (* a check constraint over violating data is refused *)
  (match
     Ddl.create_attachment ctx ~relation:"t" ~attachment_type:"check"
       ~name:"big" ~attrs:[ ("predicate", "salary > 100") ] ()
   with
  | Error (Error.Constraint_violation _) -> ()
  | _ -> Alcotest.fail "check constraint built over violations");
  Services.commit services ctx

(* Three-level cascade with indexes and triggers riding along: deleting the
   grandparent chains through two refint attachments, and every cascaded
   delete runs its own relation's full attachment set. *)
let test_deep_cascade_with_attachments () =
  let services = fresh_services () in
  let ctx = Services.begin_txn services in
  let one_key_schema name =
    ignore name;
    Schema.make_exn
      [
        Schema.column ~nullable:false "id" Value.Tint;
        Schema.column "parent" Value.Tint;
      ]
  in
  let mk name =
    check_ok name
      (Ddl.create_relation ctx ~name ~schema:(one_key_schema name)
         ~storage_method:"heap" ())
  in
  let a = mk "a" and b = mk "b" and c = mk "c" in
  let fk child parent =
    check_ok "fk"
      (Ddl.create_attachment ctx ~relation:child ~attachment_type:"refint"
         ~name:(child ^ "_" ^ parent)
         ~attrs:
           [
             ("fields", "parent"); ("parent", parent); ("parent_fields", "id");
             ("on_delete", "cascade");
           ]
         ())
  in
  fk "b" "a";
  fk "c" "b";
  (* indexes on every level so cascaded deletes maintain them *)
  List.iter
    (fun rel ->
      check_ok "idx"
        (Ddl.create_attachment ctx ~relation:rel ~attachment_type:"btree_index"
           ~name:(rel ^ "_pk")
           ~attrs:[ ("fields", "id"); ("unique", "true") ] ()))
    [ "a"; "b"; "c" ];
  audit_log := [];
  check_ok "audit c"
    (Ddl.create_attachment ctx ~relation:"c" ~attachment_type:"trigger"
       ~name:"c_audit"
       ~attrs:[ ("function", "audit"); ("events", "delete") ] ());
  let ka = check_ok "a1" (Relation.insert ctx a [| vi 1; Value.Null |]) in
  ignore (check_ok "b1" (Relation.insert ctx b [| vi 10; vi 1 |]));
  ignore (check_ok "b2" (Relation.insert ctx b [| vi 11; vi 1 |]));
  ignore (check_ok "c1" (Relation.insert ctx c [| vi 100; vi 10 |]));
  ignore (check_ok "c2" (Relation.insert ctx c [| vi 101; vi 10 |]));
  ignore (check_ok "c3" (Relation.insert ctx c [| vi 102; vi 11 |]));
  (* delete the grandparent: everything cascades *)
  ignore (check_ok "cascade" (Relation.delete ctx a ka));
  Alcotest.(check int) "a empty" 0 (count_records ctx a);
  Alcotest.(check int) "b cascaded" 0 (count_records ctx b);
  Alcotest.(check int) "c cascaded" 0 (count_records ctx c);
  (* triggers fired once per cascaded grandchild delete *)
  Alcotest.(check int) "grandchild triggers" 3 (List.length !audit_log);
  (* the grandchild index followed the cascade *)
  let at_id = Option.get (Registry.attachment_id "btree_index") in
  Alcotest.(check int) "index empty" 0
    (List.length
       (check_ok "lookup"
          (Relation.lookup ctx c ~attachment_id:at_id ~instance:1
             ~key:[| vi 100 |])));
  (* and the whole cascade is undoable: savepoint + repeat + rollback *)
  let ka =
    check_ok "a again" (Relation.insert ctx a [| vi 1; Value.Null |])
  in
  ignore (check_ok "b again" (Relation.insert ctx b [| vi 10; vi 1 |]));
  ignore (check_ok "c again" (Relation.insert ctx c [| vi 100; vi 10 |]));
  Services.savepoint ctx "sp";
  ignore (check_ok "cascade2" (Relation.delete ctx a ka));
  Alcotest.(check int) "gone" 0 (count_records ctx c);
  Services.rollback_to ctx "sp";
  Alcotest.(check int) "cascade undone a" 1 (count_records ctx a);
  Alcotest.(check int) "cascade undone b" 1 (count_records ctx b);
  Alcotest.(check int) "cascade undone c" 1 (count_records ctx c);
  Services.commit services ctx

let test_agg_attachment () =
  let services = fresh_services () in
  let ctx, desc = setup services in
  check_ok "agg"
    (Ddl.create_attachment ctx ~relation:"t" ~attachment_type:"agg"
       ~name:"sal_by_dept"
       ~attrs:[ ("group", "dept"); ("sum", "salary") ] ());
  let keys =
    List.map
      (fun (i, d, s) ->
        (i, check_ok "ins" (Relation.insert ctx desc (emp i "x" d s))))
      [ (1, "eng", 100); (2, "eng", 200); (3, "ops", 50); (4, "eng", 1) ]
  in
  let groups () =
    Dmx_attach.Agg.groups ctx desc ~name:"sal_by_dept"
    |> List.map (fun g ->
           ( Value.to_string g.Dmx_attach.Agg.group_values.(0),
             g.count,
             Int64.to_int g.sum ))
  in
  Alcotest.(check (list (triple string int int)))
    "initial groups"
    [ ("\"eng\"", 3, 301); ("\"ops\"", 1, 50) ]
    (groups ());
  (* update moving a record between groups *)
  let k2 = List.assoc 2 keys in
  ignore (check_ok "move" (Relation.update ctx desc k2 (emp 2 "x" "ops" 200)));
  Alcotest.(check (list (triple string int int)))
    "after move"
    [ ("\"eng\"", 2, 101); ("\"ops\"", 2, 250) ]
    (groups ());
  (* delete erases a group when count reaches zero *)
  ignore (check_ok "del" (Relation.delete ctx desc (List.assoc 3 keys)));
  ignore (check_ok "del2" (Relation.delete ctx desc k2));
  Alcotest.(check (list (triple string int int)))
    "ops gone"
    [ ("\"eng\"", 2, 101) ]
    (groups ());
  (* transactionally exact: savepoint + rollback restores the aggregates *)
  Services.savepoint ctx "sp";
  ignore (check_ok "ins" (Relation.insert ctx desc (emp 9 "x" "hr" 77)));
  ignore (check_ok "del3" (Relation.delete ctx desc (List.assoc 1 keys)));
  Services.rollback_to ctx "sp";
  Alcotest.(check (list (triple string int int)))
    "restored"
    [ ("\"eng\"", 2, 101) ]
    (groups ());
  (* point lookup *)
  (match Dmx_attach.Agg.group ctx desc ~name:"sal_by_dept" ~key:[| vs "eng" |] with
  | Some g -> Alcotest.(check int) "eng count" 2 g.Dmx_attach.Agg.count
  | None -> Alcotest.fail "group missing");
  Services.commit services ctx

let suite =
  [
    Alcotest.test_case "multiple instances in one slot" `Quick
      test_multiple_instances_one_slot;
    Alcotest.test_case "materialised aggregation" `Quick test_agg_attachment;
    Alcotest.test_case "three-level cascade with attachments" `Quick
      test_deep_cascade_with_attachments;
    Alcotest.test_case "hash overflow chains" `Quick test_hash_overflow_chains;
    Alcotest.test_case "refint on child update" `Quick test_refint_child_update;
    Alcotest.test_case "deferred refint" `Quick test_refint_deferred;
    Alcotest.test_case "attachment DDL validation" `Quick
      test_attachment_ddl_validation;
    Alcotest.test_case "building attachments from existing records" `Quick
      test_index_build_from_existing;
  ]
