bench/main.mli:
