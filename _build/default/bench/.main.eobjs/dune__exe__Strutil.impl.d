bench/strutil.ml: String
