bench/report.ml: Fmt List String
