bench/workload.ml: Dmx_core Dmx_db Dmx_page Dmx_query Dmx_smethod Dmx_value Float Fmt List Schema Unix Value
