(* Plain-text experiment reporting. *)

let heading id ~claim =
  Fmt.pr "@.%s@." (String.make 78 '=');
  Fmt.pr "%s@." id;
  Fmt.pr "paper claim: %s@." claim;
  Fmt.pr "%s@." (String.make 78 '-')

(* Fixed-width table: header row then data rows. *)
let table ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        if i = 0 then Fmt.pr "  %-*s" w cell else Fmt.pr "  %*s" w cell)
      cells;
    Fmt.pr "@."
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let verdict ~ok fmt =
  Fmt.kstr
    (fun s -> Fmt.pr "shape check: %s — %s@." (if ok then "PASS" else "FAIL") s)
    fmt

let f1 v = Fmt.str "%.1f" v
let f2 v = Fmt.str "%.2f" v
let i v = string_of_int v
